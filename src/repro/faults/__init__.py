"""Deterministic fault injection: plans, the nemesis, chaos runs.

* :mod:`repro.faults.plan` — declarative, JSON-round-trippable fault
  schedules (:class:`FaultPlan` / :class:`FaultSpec`);
* :mod:`repro.faults.generate` — seed-deterministic random schedules;
* :mod:`repro.faults.nemesis` — the DES process that executes a plan
  against a live platform;
* :mod:`repro.faults.chaos` — end-to-end seed-replayable chaos runs
  (workload + nemesis + auditor + event log).
"""

from repro.faults.generate import random_plan
from repro.faults.nemesis import Nemesis
from repro.faults.plan import KINDS, FaultPlan, FaultSpec

__all__ = ["FaultPlan", "FaultSpec", "KINDS", "Nemesis", "random_plan"]
