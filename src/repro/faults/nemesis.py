"""The nemesis: a DES process that executes a :class:`FaultPlan`.

It sleeps until each event's virtual trigger time, applies the fault to
the live cluster objects, and (when the event carries a ``duration_s``)
spawns a healer process that applies the natural inverse — recover the
host, bring the NIC back up, heal the partition, restore the disk.

Every injection and heal is recorded in the event log under the
``nemesis`` component, so a chaos run's JSONL artifact is a complete,
ordered account of what was done to the cluster.  When an
:class:`~repro.obs.audit.Auditor` is supplied, a full invariant audit
pass runs after every injection and heal — in ``raise`` mode a chaos
run therefore fails at the *first* moment the system's cross-component
state diverges, not at teardown.

The nemesis drives anything platform-shaped: it needs ``sim``,
``cluster`` (name-indexable, with ``.network``), ``config``, and for
manager/imd faults ``cmd`` (reassignable), ``imds`` (appendable), and
``mgr``.  Both :class:`repro.exp.platform.Platform` and the
non-dedicated chaos adapter satisfy this.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultPlan
from repro.metrics.recorder import Recorder
from repro.sim import Interrupt


class Nemesis:
    """Executes one fault plan against one platform."""

    def __init__(self, targets, plan: FaultPlan, auditor=None):
        self.targets = targets
        self.plan = plan
        self.auditor = auditor
        self.sim = targets.sim
        self.net = targets.cluster.network
        self.stats = Recorder("nemesis")
        #: currently-injected loss bursts (values stack by max, not sum)
        self._loss_bursts: list[float] = []
        #: the partition groups we installed last, to avoid a stale healer
        #: clearing a newer cut
        self._partition_marker = None
        self.injected = 0
        self.healed = 0
        self.proc = None

    def start(self):
        """Spawn the nemesis process (idempotent)."""
        if self.proc is None:
            self.proc = self.sim.process(self._run())
        return self.proc

    def stop(self) -> None:
        if self.proc is not None and self.proc.is_alive:
            self.proc.interrupt("nemesis-stop")

    # -- main schedule loop ------------------------------------------------
    def _run(self):
        try:
            for ev in self.plan:
                if ev.time > self.sim.now:
                    yield self.sim.at(ev.time)
                yield from self._inject(ev)
        except Interrupt:
            return

    def _inject(self, ev):
        handler = getattr(self, f"_do_{ev.kind}")
        self._log("warn", f"inject.{ev.kind}", ev)
        self.injected += 1
        self.stats.add(f"inject.{ev.kind}")
        healer = yield from handler(ev)
        self._audit()
        if healer is not None and ev.duration_s is not None:
            self.sim.process(self._heal_later(ev, healer))

    def _heal_later(self, ev, healer):
        yield self.sim.timeout(ev.duration_s)
        done = healer()
        if done is not None:
            yield from done
        self._log("info", f"heal.{ev.kind}", ev)
        self.healed += 1
        self.stats.add(f"heal.{ev.kind}")
        self._audit()

    def _log(self, level, event, ev) -> None:
        log = self.sim.eventlog
        if not log.enabled:
            return
        fields = {}
        if ev.duration_s is not None:
            fields["duration_s"] = ev.duration_s
        if ev.value is not None:
            fields["value"] = ev.value
        if ev.group:
            fields["group"] = ",".join(ev.group)
        if ev.shard is not None:
            fields["shard"] = ev.shard
        getattr(log, level)(self.sim, "nemesis", event,
                            host=ev.target or "", **fields)

    def _audit(self) -> None:
        if self.auditor is not None and self.auditor.enabled:
            self.targets.audit(self.auditor, teardown=False)

    # -- fault mechanics ---------------------------------------------------
    # Each ``_do_<kind>`` is a generator (may yield sim events) returning
    # either None (no heal) or a zero-arg healer.  The healer itself may
    # return a generator for heals that need simulated time (re-register).

    def _do_host_crash(self, ev):
        ws = self.targets.cluster[ev.target]
        if ws.crashed:
            return None
        had_imd = any(imd.ws is ws and not imd.exited
                      for imd in getattr(self.targets, "imds", ()))
        ws.crash()
        yield self.sim.timeout(0)

        def heal():
            ws.recover()
            # on a dedicated platform there is no rmd to re-recruit the
            # host, so the nemesis models the reboot's fresh imd itself;
            # with rmds present they notice the dead imd and resync
            if had_imd and not getattr(self.targets, "rmds", None):
                return self._respawn_imd(ws)
            return None
        return heal

    def _respawn_imd(self, ws):
        from repro.core.imd import IdleMemoryDaemon
        dead_epochs = [imd.epoch for imd in self.targets.imds
                       if imd.ws is ws]
        epoch = max(dead_epochs, default=0) + 1
        params = getattr(self.targets, "params", None)
        shard_map = getattr(self.targets, "shard_map", None)
        imd = IdleMemoryDaemon(
            self.sim, ws, self.targets.config, epoch=epoch,
            cmd_host=None if shard_map is not None
            else self.targets.mgr.name,
            pool_bytes=getattr(params, "imd_pool_bytes", None),
            allocator_kind=getattr(params, "allocator_kind", "first-fit"),
            shard_map=shard_map)
        self.targets.imds.append(imd)
        self.stats.add("imd_respawns")
        yield imd.register()

    def _do_nic_flap(self, ev):
        ws = self.targets.cluster[ev.target]
        if ws.crashed or ws.nic.down:
            return None
        ws.nic.down = True
        yield self.sim.timeout(0)

        def heal():
            # a crash/recover during the flap already reset the NIC
            if not ws.crashed:
                ws.nic.down = False
            return None
        return heal

    def _do_loss_burst(self, ev):
        self._loss_bursts.append(ev.value)
        self.net.extra_loss_prob = max(self._loss_bursts)
        yield self.sim.timeout(0)

        def heal():
            self._loss_bursts.remove(ev.value)
            self.net.extra_loss_prob = (max(self._loss_bursts)
                                        if self._loss_bursts else 0.0)
            return None
        return heal

    def _do_partition(self, ev):
        group = [h for h in ev.group if h in self.targets.cluster.workstations]
        rest = [h for h in self.targets.cluster.workstations
                if h not in set(group)]
        if not group or not rest:
            return None
        self.net.set_partition([group, rest])
        marker = self.net._partition
        self._partition_marker = marker
        yield self.sim.timeout(0)

        def heal():
            if self.net._partition is marker:
                self.net.clear_partition()
            return None
        return heal

    def _do_reclaim_storm(self, ev):
        """The owner storms back: console activity plus a load spike.

        With rmds present (non-dedicated), the rmd observes the activity
        and reclaims the imd itself — the paper's Section 5.3.1 path.  On
        a dedicated platform the nemesis performs the reclaim directly:
        graceful imd shutdown now, fresh incarnation at heal time.
        """
        ws = self.targets.cluster[ev.target]
        if ws.crashed:
            return None
        ws.touch_console()
        ws.owner_load += 1.0
        if not getattr(self.targets, "rmds", None):
            victim = next((imd for imd in getattr(self.targets, "imds", ())
                           if imd.ws is ws and not imd.exited), None)
            if victim is not None:
                # mirror the rmd's reclaim protocol: tell the manager the
                # host is busy (drops it from the IWD), then drain the imd
                yield from self._notify_busy(ws)
                yield victim.shutdown()
        else:
            yield self.sim.timeout(0)

        def heal():
            ws.owner_load = max(0.0, ws.owner_load - 1.0)
            if not getattr(self.targets, "rmds", None) \
                    and not ws.crashed:
                return self._respawn_imd(ws)
            return None
        return heal

    def _notify_busy(self, ws):
        from repro.core.config import CMD_PORT
        from repro.net.rpc import RpcClient, RpcTimeout
        cfg = self.targets.config
        shard_managers = getattr(self.targets, "shard_managers", None)
        if shard_managers is None:
            cmd_hosts = [self.targets.mgr.name]
        else:
            # every shard's IWD lists this host — tell them all
            cmd_hosts = []
            for sid in sorted(shard_managers):
                primary = self.targets.live_primary(sid)
                if primary is not None:
                    cmd_hosts.append(primary.ws.name)
        sock = ws.endpoint(cfg.transport).socket()
        try:
            for cmd_host in cmd_hosts:
                try:
                    yield from RpcClient(sock).call(
                        (cmd_host, CMD_PORT), "notify_busy",
                        {"host": ws.name}, timeout=cfg.rpc_timeout_s,
                        retries=cfg.rpc_retries)
                except RpcTimeout:
                    self.stats.add("cmd_unreachable")
        finally:
            sock.close()

    def _do_disk_slowdown(self, ev):
        ws = self.targets.cluster[ev.target]
        if ws.disk is None:
            return None
        ws.disk.slowdown = ev.value
        yield self.sim.timeout(0)

        def heal():
            ws.disk.slowdown = 1.0
            return None
        return heal

    def _do_manager_crash(self, ev):
        if getattr(self.targets, "shard_managers", None) is not None:
            return (yield from self._do_shard_primary_crash(ev))
        cmd = self.targets.cmd
        if cmd is None:
            return None
        incarnation = cmd.incarnation
        cmd.stop()
        self.stats.add("manager_crashes")
        yield self.sim.timeout(0)

        def heal():
            from repro.core.manager import CentralManager
            self.targets.cmd = CentralManager(
                self.sim, self.targets.mgr, self.targets.config,
                incarnation=incarnation + 1)
            self.stats.add("manager_restarts")
            return None
        return heal

    def _do_shard_primary_crash(self, ev):
        """Crash one shard's serving primary.

        With replication on, the heal does *not* bring the primary back
        — the backup promotes itself via heartbeat misses — it restarts
        the crashed node as the shard's new backup and resyncs it off
        the promoted primary.  Without replication the heal restarts the
        primary with a bumped incarnation (clients and imds notice the
        per-shard incarnation change and drop that shard's state).
        """
        sid = ev.shard or 0
        victim = self.targets.live_primary(sid)
        if victim is None:
            return None
        incarnation = victim.incarnation
        replicated = victim.peer is not None
        victim.stop()
        self.stats.add("manager_crashes")
        yield self.sim.timeout(0)

        def heal():
            return self._heal_shard(sid, victim, incarnation, replicated)
        return heal

    def _heal_shard(self, sid, victim, incarnation, replicated):
        from repro.core.manager import CentralManager
        cfg = self.targets.config
        if not replicated:
            mgr = CentralManager(
                self.sim, victim.ws, cfg, incarnation=incarnation + 1,
                shard_id=sid, shard_map=self.targets.shard_map)
            self.targets.shard_managers[sid].append(mgr)
            self.stats.add("manager_restarts")
            yield self.sim.timeout(0)
            return
        # wait (bounded) for the backup's heartbeat watcher to promote
        deadline = self.sim.now + 10.0 * cfg.repl_heartbeat_s \
            * max(cfg.repl_promote_misses, 1)
        while self.targets.live_primary(sid) is None \
                and self.sim.now < deadline:
            yield self.sim.timeout(cfg.repl_heartbeat_s)
        primary = self.targets.live_primary(sid)
        if primary is None:
            self.stats.add("promotion_timeouts")
            return
        backup = CentralManager(
            self.sim, victim.ws, cfg, incarnation=primary.incarnation,
            shard_id=sid, shard_map=primary.shard_map, role="backup")
        self.targets.shard_managers[sid].append(backup)
        self.stats.add("backup_respawns")
        yield from backup.resync()
