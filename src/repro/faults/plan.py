"""Declarative fault schedules: what breaks, when, for how long.

A :class:`FaultPlan` is a list of :class:`FaultSpec` events on the
virtual-time axis, executed by :class:`~repro.faults.nemesis.Nemesis`.
Plans are plain data: they serialize to JSON (``to_json`` / ``from_json``)
with stable key ordering, so a failing chaos run's schedule can be saved
as an artifact and replayed bit-for-bit later (``repro chaos --plan-in``).

Supported fault kinds and their operands:

==================  =======================  ==================================
kind                target                   value / group
==================  =======================  ==================================
``host_crash``      host name                —  (recovers after ``duration_s``)
``nic_flap``        host name                —  (NIC back up after duration)
``loss_burst``      —                        ``value`` = injected frame-loss p
``partition``       —                        ``group`` = hosts on the cut side
``reclaim_storm``   host name                —  (owner activity for duration)
``disk_slowdown``   host name (with disk)    ``value`` = service-time factor
``manager_crash``   —                        ``shard`` = directory shard whose
                                             primary is crashed (None = the
                                             classic single manager; restarted
                                             or failed over after ``duration_s``)
==================  =======================  ==================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

#: every fault kind the nemesis knows how to execute
KINDS = ("host_crash", "nic_flap", "loss_burst", "partition",
         "reclaim_storm", "disk_slowdown", "manager_crash")

#: kinds that require a target host
_NEEDS_TARGET = {"host_crash", "nic_flap", "reclaim_storm", "disk_slowdown"}

#: kinds whose ``value`` operand is required (and its valid range)
_NEEDS_VALUE = {"loss_burst": (0.0, 1.0), "disk_slowdown": (1.0, 1000.0)}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled injection."""

    #: virtual time of the onset
    time: float
    kind: str
    #: host the fault applies to (kind-dependent; see module docstring)
    target: Optional[str] = None
    #: how long until the natural inverse (recover/heal/restore) fires;
    #: None leaves the fault in place for the rest of the run
    duration_s: Optional[float] = None
    #: scalar operand: loss probability or disk slowdown factor
    value: Optional[float] = None
    #: partition only: the hosts on one side of the cut (everything else
    #: forms the other side)
    group: tuple = ()
    #: manager_crash only: which directory shard's primary to crash.
    #: None targets the classic single manager — and is *omitted* from
    #: the wire form, so pre-sharding plans replay byte-identically.
    shard: Optional[int] = None

    def validate(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {KINDS})")
        if self.time < 0.0:
            raise ValueError(f"{self.kind}: negative trigger time "
                             f"{self.time}")
        if self.duration_s is not None and self.duration_s <= 0.0:
            raise ValueError(f"{self.kind}: non-positive duration "
                             f"{self.duration_s}")
        if self.kind in _NEEDS_TARGET and not self.target:
            raise ValueError(f"{self.kind}: needs a target host")
        if self.kind in _NEEDS_VALUE:
            lo, hi = _NEEDS_VALUE[self.kind]
            if self.value is None or not lo <= self.value <= hi:
                raise ValueError(
                    f"{self.kind}: value {self.value!r} outside "
                    f"[{lo}, {hi}]")
        if self.kind == "partition" and not self.group:
            raise ValueError("partition: needs a non-empty group")
        if self.shard is not None:
            if self.kind != "manager_crash":
                raise ValueError(f"{self.kind}: shard operand is only "
                                 f"valid for manager_crash")
            if not isinstance(self.shard, int) or self.shard < 0:
                raise ValueError(f"manager_crash: bad shard {self.shard!r}")

    def to_dict(self) -> dict:
        d = {"time": self.time, "kind": self.kind}
        if self.target is not None:
            d["target"] = self.target
        if self.duration_s is not None:
            d["duration_s"] = self.duration_s
        if self.value is not None:
            d["value"] = self.value
        if self.group:
            d["group"] = list(self.group)
        if self.shard is not None:
            d["shard"] = self.shard
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        spec = cls(time=float(d["time"]), kind=str(d["kind"]),
                   target=d.get("target"),
                   duration_s=(None if d.get("duration_s") is None
                               else float(d["duration_s"])),
                   value=(None if d.get("value") is None
                          else float(d["value"])),
                   group=tuple(d.get("group", ())),
                   shard=(None if d.get("shard") is None
                          else int(d["shard"])))
        spec.validate()
        return spec


@dataclass(frozen=True)
class FaultPlan:
    """An ordered fault schedule plus the metadata needed to replay it."""

    events: tuple = ()
    #: the seed the schedule was generated from (and which the chaos
    #: harness feeds to the Simulator, making runs fully replayable)
    seed: Optional[int] = None
    #: the experiment the plan was generated for (informational)
    experiment: str = ""
    description: str = ""
    _extra: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self, "events",
            tuple(sorted(self.events, key=lambda e: (e.time, e.kind,
                                                     e.target or ""))))

    def validate(self, hosts=None) -> None:
        """Check every event; with ``hosts`` also check target existence."""
        for ev in self.events:
            ev.validate()
            if hosts is not None and ev.target is not None \
                    and ev.target not in hosts:
                raise ValueError(
                    f"{ev.kind} at t={ev.time}: unknown target "
                    f"{ev.target!r} (hosts: {sorted(hosts)})")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {"version": 1, "seed": self.seed,
                "experiment": self.experiment,
                "description": self.description,
                "events": [e.to_dict() for e in self.events]}

    def to_json(self) -> str:
        """Stable, diff-friendly JSON (sorted keys, one event per line)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        version = d.get("version", 1)
        if version != 1:
            raise ValueError(f"unsupported fault-plan version {version}")
        return cls(events=tuple(FaultSpec.from_dict(e)
                                for e in d.get("events", ())),
                   seed=d.get("seed"), experiment=d.get("experiment", ""),
                   description=d.get("description", ""))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(self.to_json() + "\n")

    @classmethod
    def read(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fp:
            return cls.from_json(fp.read())
