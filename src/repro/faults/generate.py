"""Seed-deterministic random fault-schedule generation.

``random_plan(seed=N, ...)`` always yields the same :class:`FaultPlan`
for the same arguments — the generator draws from its own
``random.Random(seed)`` instance, never from the simulator's streams, so
plan generation is independent of (and cannot perturb) simulation
randomness.  A chaos run is then fully described by ``(seed, plan)``,
and since the plan embeds the seed, the exported JSON alone replays it.

The schedule is a sequential walk over virtual time with a per-resource
busy-until map: a host that is crashed (or mid-flap, or mid-storm) is
not targeted again until its current fault heals, the network carries at
most one partition at a time, and the manager at most one crash.  That
keeps generated plans *plausible* — overlapping contradictory faults on
one resource would test the nemesis, not the system.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.faults.plan import FaultPlan, FaultSpec

#: relative likelihood of each kind in a generated schedule
_WEIGHTS = {
    "host_crash": 3,
    "nic_flap": 3,
    "loss_burst": 3,
    "partition": 2,
    "reclaim_storm": 2,
    "disk_slowdown": 2,
    "manager_crash": 1,
}

#: (min, max) duration seconds per kind
_DURATIONS = {
    "host_crash": (1.0, 5.0),
    "nic_flap": (0.2, 1.0),
    "loss_burst": (0.5, 2.0),
    "partition": (0.5, 2.0),
    "reclaim_storm": (2.0, 6.0),
    "disk_slowdown": (1.0, 4.0),
    "manager_crash": (1.0, 3.0),
}


def random_plan(seed: int,
                hosts: Sequence[str],
                horizon_s: float = 30.0,
                start_s: float = 2.0,
                mean_gap_s: float = 2.0,
                disk_hosts: Optional[Sequence[str]] = None,
                protected: Sequence[str] = ("app",),
                kinds: Optional[Sequence[str]] = None,
                shards: Optional[int] = None,
                experiment: str = "") -> FaultPlan:
    """Generate a replayable fault schedule.

    ``hosts`` are the crash/flap/storm candidates (``protected`` names —
    by default the application node — are never crashed or flapped, so a
    generated plan cannot trivially kill the workload itself).
    ``disk_hosts`` are slowdown candidates (default: the protected
    hosts, i.e. the app node's disk — the interesting one).
    ``shards`` (when set) makes each ``manager_crash`` target one
    randomly-drawn directory shard, with a per-shard busy map; leaving
    it None keeps the classic single-manager schedule — and since the
    rng draw sequence is untouched in that case, pre-sharding plans
    regenerate byte-identically.
    """
    rng = random.Random(seed)
    targets = [h for h in hosts if h not in set(protected)]
    slow_targets = list(disk_hosts if disk_hosts is not None else protected)
    pool = list(kinds if kinds is not None else _WEIGHTS)
    if not targets:
        pool = [k for k in pool
                if k in ("loss_burst", "disk_slowdown", "manager_crash")]
    if not slow_targets:
        pool = [k for k in pool if k != "disk_slowdown"]
    if not pool:
        raise ValueError("no applicable fault kinds for this host set")
    weights = [_WEIGHTS[k] for k in pool]

    #: resource -> virtual time its current fault heals
    busy: dict[str, float] = {}
    events = []
    t = start_s
    while True:
        t += rng.expovariate(1.0 / mean_gap_s)
        if t >= horizon_s:
            break
        kind = rng.choices(pool, weights=weights)[0]
        lo, hi = _DURATIONS[kind]
        duration = round(rng.uniform(lo, hi), 3)
        time = round(t, 3)
        if kind in ("host_crash", "nic_flap", "reclaim_storm"):
            free = [h for h in targets if busy.get(h, 0.0) <= time]
            if not free:
                continue
            target = rng.choice(free)
            busy[target] = time + duration
            events.append(FaultSpec(time=time, kind=kind, target=target,
                                    duration_s=duration))
        elif kind == "loss_burst":
            if busy.get("network", 0.0) > time:
                continue
            busy["network"] = time + duration
            events.append(FaultSpec(
                time=time, kind=kind, duration_s=duration,
                value=round(rng.uniform(0.05, 0.3), 3)))
        elif kind == "partition":
            if busy.get("network", 0.0) > time:
                continue
            free = [h for h in targets if busy.get(h, 0.0) <= time]
            if len(free) < 2:
                continue
            cut = rng.sample(free, k=rng.randint(1, len(free) - 1))
            busy["network"] = time + duration
            events.append(FaultSpec(time=time, kind=kind,
                                    duration_s=duration,
                                    group=tuple(sorted(cut))))
        elif kind == "disk_slowdown":
            target = rng.choice(slow_targets)
            if busy.get(f"disk:{target}", 0.0) > time:
                continue
            busy[f"disk:{target}"] = time + duration
            events.append(FaultSpec(
                time=time, kind=kind, target=target, duration_s=duration,
                value=round(rng.uniform(2.0, 8.0), 3)))
        elif kind == "manager_crash":
            if shards is None:
                if busy.get("manager", 0.0) > time:
                    continue
                busy["manager"] = time + duration
                events.append(FaultSpec(time=time, kind=kind,
                                        duration_s=duration))
            else:
                sid = rng.randrange(shards)
                if busy.get(f"manager:{sid}", 0.0) > time:
                    continue
                busy[f"manager:{sid}"] = time + duration
                events.append(FaultSpec(time=time, kind=kind,
                                        duration_s=duration, shard=sid))
    plan = FaultPlan(
        events=tuple(events), seed=seed, experiment=experiment,
        description=f"random_plan(seed={seed}, horizon_s={horizon_s}, "
                    f"hosts={len(hosts)})")
    plan.validate(hosts=set(hosts) | set(slow_targets))
    return plan
