"""Seed-replayable chaos runs: workload + nemesis + auditor + event log.

``run_chaos("fig7", seed=N)`` builds a scaled-down version of the named
experiment's platform, generates a random :class:`FaultPlan` from the
seed (or takes one via ``plan=``), runs the workload while the nemesis
executes the schedule, and audits cluster invariants after every
injection, every heal, and at teardown.  The returned bundle carries the
plan (exportable as JSON), the structured event log (its JSONL dump is
byte-identical across runs of the same seed+plan — asserted in
``tests/faults/test_chaos_determinism.py``), the auditor, and the
workload result.

The same seed drives *both* the schedule generator and the simulator, so
one integer fully reproduces a failing run; alternatively, a previously
exported plan JSON (which embeds its seed) replays it on its own.

Scenarios:

* ``"fig7"`` — the dedicated Section 5.1 platform (scaled down to four
  memory hosts) under a hotcold synthetic workload, the same data path
  the Figure 7 applications exercise.
* ``"nondedicated"`` — the Section 5.3.1 desktop cluster with resource
  monitors and stochastic owners; faults land on top of the normal
  recruit/reclaim churn.
* ``"failover"`` — the PR 9 sharded platform: a two-shard replicated
  region directory, with ``manager_crash`` events drawn per shard so
  the nemesis crashes shard primaries mid-workload and the backups
  promote themselves (the manager hosts are protected from host-level
  faults — directory loss is exercised through the crash/promote path,
  not by nuking the node under it).

The chaos configs enable the hardening this subsystem exists to
exercise: exponential RPC backoff with jitter, imd heartbeat
re-registration (so daemons re-attach after a manager restart), and
client re-registration on manager-incarnation change.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.generate import random_plan
from repro.faults.nemesis import Nemesis
from repro.faults.plan import FaultPlan

EXPERIMENTS = ("fig7", "nondedicated", "failover")

MB = 1024 * 1024


class ChaosRunner:
    """A fault-tolerant synthetic runner: under injected faults the Dodo
    data path may fail outright (manager unreachable at ``copen`` time,
    region lost mid-``cread``); a real application would fall back to
    the file system, so this runner does too, counting each degraded
    request instead of raising."""

    def __init__(self, platform, params, use_dodo: bool = True,
                 policy: str = "lru"):
        from repro.workloads.app import SyntheticRunner
        self._inner = SyntheticRunner(platform, params, use_dodo=use_dodo,
                                      policy=policy)
        self.degraded = 0
        # route every request through the degrading read below
        self._inner._read = self._read
        self.run = self._inner.run

    def _read(self, offset: int, length: int):
        inner = self._inner
        if not inner.use_dodo:
            yield inner.fs.read(inner.fh, offset, length)
            return
        ridx = offset // inner.region_bytes
        crd = inner._crds.get(ridx)
        if crd is None:
            crd, err = yield from inner.cache.copen(
                inner.region_bytes, inner.fh.fd, ridx * inner.region_bytes)
            if err != 0:
                self.degraded += 1
                yield inner.fs.read(inner.fh, offset, length)
                return
            inner._crds[ridx] = crd
        _, err, _ = yield from inner.cache.cread(
            crd, offset - ridx * inner.region_bytes, length)
        if err != 0:
            self.degraded += 1
            yield inner.fs.read(inner.fh, offset, length)


def _chaos_config(base_kwargs: dict, cache=None):
    """A DodoConfig with the fault-tolerance knobs switched on.

    ``cache`` (a :class:`~repro.core.config.CacheConfig`) opts the run
    into the elastic-caching subsystem; None keeps the stock
    byte-identical configuration.
    """
    from repro.core.config import DodoConfig
    if cache is not None:
        base_kwargs["cache"] = cache
    return DodoConfig(rpc_backoff_s=0.02, rpc_backoff_jitter=0.25,
                      imd_reregister_s=2.0, **base_kwargs)


def _plan_end(plan: FaultPlan) -> float:
    return max((ev.time + (ev.duration_s or 0.0) for ev in plan),
               default=0.0)


def run_chaos(experiment: str = "fig7", seed: int = 0,
              plan: Optional[FaultPlan] = None, audit: str = "raise",
              horizon_s: float = 20.0,
              eventlog_level: str = "debug", cache=None) -> dict:
    """One chaos run; see module docstring.  Returns a dict with keys
    ``plan``, ``eventlog``, ``auditor``, ``result``, ``degraded``,
    ``platform`` (scenario-specific), ``injected`` and ``healed``.

    ``cache`` (a :class:`~repro.core.config.CacheConfig`, default None)
    runs the scenario with the elastic-caching subsystem on — the
    differential migration tests replay reclaim storms this way.
    """
    if experiment not in EXPERIMENTS:
        raise ValueError(f"unknown chaos experiment {experiment!r}, "
                         f"expected one of {EXPERIMENTS}")
    if plan is not None and plan.seed is not None:
        seed = plan.seed
    run = _SCENARIOS[experiment](seed, plan, audit, horizon_s,
                                 eventlog_level, cache)
    run["experiment"] = experiment
    run["seed"] = seed
    return run


# -- scenarios ---------------------------------------------------------------
def _run_fig7(seed, plan, audit, horizon_s, eventlog_level,
              cache=None) -> dict:
    from repro.exp.platform import Platform, PlatformParams
    from repro.obs.audit import make_auditor
    from repro.obs.eventlog import EventLog, install_eventlog
    from repro.sim import Simulator
    from repro.workloads.synthetic import SyntheticParams

    n_mem = 4
    hosts = ["app", "mgr"] + [f"mem{i:02d}" for i in range(n_mem)]
    if plan is None:
        plan = random_plan(seed, hosts, horizon_s=horizon_s,
                           protected=("app", "mgr"),
                           experiment="fig7")
    log = EventLog(level=eventlog_level)
    auditor = make_auditor(audit, eventlog=log)
    previous = install_eventlog(log)
    try:
        sim = Simulator(seed=seed)
        params = PlatformParams(
            transport="udp", store_payload=False, n_memory_hosts=n_mem,
            imd_pool_bytes=2 * MB, local_cache_bytes=512 * 1024,
            app_fs_cache_dodo=1 * MB, app_fs_cache_baseline=4 * MB,
            disk_capacity_bytes=256 * MB)
        platform = Platform(
            sim, params, dodo=True,
            config=_chaos_config(dict(
                transport="udp", store_payload=False, dedicated=True,
                max_pool_bytes=2 * MB), cache),
            faults=plan, nemesis_auditor=auditor)
        runner = ChaosRunner(platform, SyntheticParams(
            pattern="hotcold", dataset_bytes=2 * MB, req_size=8192,
            num_iter=3, compute_s=0.02))
        result = sim.run(until=runner.run())
        _settle(sim, platform.config, plan)
        platform.audit(auditor, teardown=True)
        nem = platform.nemesis
        return {"plan": plan, "eventlog": log, "auditor": auditor,
                "result": result, "degraded": runner.degraded,
                "platform": platform,
                "injected": nem.injected, "healed": nem.healed}
    finally:
        install_eventlog(previous)


def _run_failover(seed, plan, audit, horizon_s, eventlog_level,
                  cache=None) -> dict:
    from repro.exp.platform import Platform, PlatformParams
    from repro.obs.audit import make_auditor
    from repro.obs.eventlog import EventLog, install_eventlog
    from repro.sim import Simulator
    from repro.workloads.synthetic import SyntheticParams

    n_mem, n_shards = 4, 2
    mgr_hosts = [h for i in range(n_shards)
                 for h in (f"mgr{i:02d}", f"bak{i:02d}")]
    hosts = ["app"] + mgr_hosts + [f"mem{i:02d}" for i in range(n_mem)]
    if plan is None:
        plan = random_plan(seed, hosts, horizon_s=horizon_s,
                           protected=tuple(["app"] + mgr_hosts),
                           kinds=("host_crash", "nic_flap", "loss_burst",
                                  "manager_crash"),
                           shards=n_shards, experiment="failover")
    log = EventLog(level=eventlog_level)
    auditor = make_auditor(audit, eventlog=log)
    previous = install_eventlog(log)
    try:
        sim = Simulator(seed=seed)
        params = PlatformParams(
            transport="udp", store_payload=False, n_memory_hosts=n_mem,
            imd_pool_bytes=2 * MB, local_cache_bytes=512 * 1024,
            app_fs_cache_dodo=1 * MB, app_fs_cache_baseline=4 * MB,
            disk_capacity_bytes=256 * MB,
            shards=n_shards, replication=True)
        platform = Platform(
            sim, params, dodo=True,
            config=_chaos_config(dict(
                transport="udp", store_payload=False, dedicated=True,
                max_pool_bytes=2 * MB,
                shards=n_shards, replication=True), cache),
            faults=plan, nemesis_auditor=auditor)
        runner = ChaosRunner(platform, SyntheticParams(
            pattern="hotcold", dataset_bytes=2 * MB, req_size=8192,
            num_iter=3, compute_s=0.02))
        result = sim.run(until=runner.run())
        _settle(sim, platform.config, plan)
        platform.audit(auditor, teardown=True)
        nem = platform.nemesis
        return {"plan": plan, "eventlog": log, "auditor": auditor,
                "result": result, "degraded": runner.degraded,
                "platform": platform,
                "injected": nem.injected, "healed": nem.healed}
    finally:
        install_eventlog(previous)


def _run_nondedicated(seed, plan, audit, horizon_s,
                      eventlog_level, cache=None) -> dict:
    from repro.cluster.idleness import IdlePolicy
    from repro.exp.nondedicated import NonDedicatedParams, build_cluster
    from repro.obs.audit import make_auditor
    from repro.obs.eventlog import EventLog, install_eventlog
    from repro.sim import Simulator
    from repro.workloads.synthetic import SyntheticParams

    p = NonDedicatedParams(n_desktops=6, idle_window_s=5.0,
                           owner_active_mean_s=30.0, seed=seed)
    hosts = ["app", "mgr"] + [f"w{i}" for i in range(p.n_desktops)]
    warmup = p.idle_window_s + 5.0
    if plan is None:
        plan = random_plan(seed, hosts, horizon_s=warmup + horizon_s,
                           start_s=warmup, protected=("app", "mgr"),
                           experiment="nondedicated")
    log = EventLog(level=eventlog_level)
    auditor = make_auditor(audit, eventlog=log)
    previous = install_eventlog(log)
    try:
        sim = Simulator(seed=seed)
        cfg = _chaos_config(dict(
            transport=p.transport, store_payload=False, dedicated=False,
            max_pool_bytes=p.max_pool,
            idle_policy=IdlePolicy(window_s=p.idle_window_s)), cache)
        cluster, cfg, cmd, rmds, owners = build_cluster(
            sim, p, dodo=True, config=cfg)
        targets = _NonDedicatedTargets(sim, cluster, cfg, cmd, rmds)
        nemesis = Nemesis(targets, plan, auditor=auditor)
        nemesis.start()
        sim.run(until=warmup)  # let monitors recruit the idle desktops

        from repro.core.regionlib import RegionCache
        from repro.core.runtime import DodoRuntime

        class _Plat:  # adapter matching what SyntheticRunner expects
            def __init__(self):
                self.sim = sim
                self.app = cluster["app"]
                self.params = type("P", (), {
                    "local_cache_bytes": p.local_cache})()
                self.config = cfg

            def region_cache(self, policy="lru", local_bytes=None,
                             runtime=None):
                rt = runtime or DodoRuntime(sim, self.app, cfg,
                                            cmd_host="mgr")
                return RegionCache(rt, local_bytes or p.local_cache,
                                   policy=policy)

        runner = ChaosRunner(_Plat(), SyntheticParams(
            pattern="hotcold", dataset_bytes=p.dataset_bytes,
            req_size=p.req_size, num_iter=3, compute_s=0.02))
        result = sim.run(until=runner.run())
        _settle(sim, cfg, plan)
        targets.audit(auditor, teardown=True)
        return {"plan": plan, "eventlog": log, "auditor": auditor,
                "result": result, "degraded": runner.degraded,
                "platform": targets,
                "injected": nemesis.injected, "healed": nemesis.healed}
    finally:
        install_eventlog(previous)


class _NonDedicatedTargets:
    """Platform-shaped adapter over the Section 5.3.1 cluster for the
    nemesis and the auditor.  ``imds`` accumulates every daemon the
    monitors ever fork (including ones later killed by a host crash) so
    the auditor can tell a killed incarnation from real divergence."""

    def __init__(self, sim, cluster, config, cmd, rmds):
        self.sim = sim
        self.cluster = cluster
        self.config = config
        self.cmd = cmd
        self.rmds = rmds
        self.mgr = cluster["mgr"]
        self.imds: list = []

    def _scan_imds(self) -> None:
        seen = {id(i) for i in self.imds}
        for rmd in self.rmds:
            imd = rmd.imd
            if imd is not None and id(imd) not in seen:
                self.imds.append(imd)

    def audit(self, auditor=None, teardown: bool = True):
        from repro.obs.audit import Auditor
        auditor = auditor or Auditor(mode="warn")
        self._scan_imds()
        components = [("workstation", ws.name, ws)
                      for ws in self.cluster.workstations.values()]
        components += [("nic", ws.name, ws.nic)
                       for ws in self.cluster.workstations.values()]
        components.append(("network", "network", self.cluster.network))
        if self.cmd is not None:
            components.append(("manager", "cmd", self.cmd))
        components += [("imd", imd.ws.name, imd) for imd in self.imds]
        return auditor.audit_components(self.sim, components,
                                        teardown=teardown)


def _settle(sim, config, plan: FaultPlan) -> None:
    """Run past the last heal plus a grace period so lazily-propagated
    state (imd heartbeats, client re-attach) converges before the strict
    teardown audit."""
    grace = 2.0 * max(config.imd_reregister_s, 1.0) + 1.0
    if config.shards > 1 or config.replication:
        # the sharded anti-entropy scrubber needs two full passes to
        # reap a region orphaned moments before the workload ended
        grace += 2.0 * max(config.scrub_interval_s, 0.0) + 1.0
    until = max(sim.now, _plan_end(plan)) + grace
    sim.run(until=until)


_SCENARIOS = {"fig7": _run_fig7, "nondedicated": _run_nondedicated,
              "failover": _run_failover}


def format_chaos(run: dict) -> str:
    """Human summary of one chaos run (the CLI prints this)."""
    plan = run["plan"]
    auditor = run["auditor"]
    lines = [f"chaos[{run['experiment']}] seed={run['seed']}: "
             f"{len(plan)} scheduled faults, "
             f"{run['injected']} injected, {run['healed']} healed"]
    by_kind: dict[str, int] = {}
    for ev in plan:
        by_kind[ev.kind] = by_kind.get(ev.kind, 0) + 1
    lines.append("  plan: " + ", ".join(
        f"{k}x{v}" for k, v in sorted(by_kind.items())))
    res = run["result"]
    lines.append(f"  workload: {res.requests} requests in "
                 f"{res.elapsed_s:.2f}s virtual, "
                 f"{run['degraded']} degraded to disk")
    if auditor is not None:
        lines.append("  " + auditor.format_report())
    return "\n".join(lines)
