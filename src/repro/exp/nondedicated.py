"""Section 5.3.1: Dodo on a non-dedicated cluster.

The paper evaluates this scenario by trace-driven simulation and reports
two claims: (1) Dodo still yields significant speedups when memory hosts
are desktop machines that come and go with their owners, and (2) the
recruitment policy (idle hosts only, never more than the idle memory,
imd killed on owner return) means **owners experience virtually no delay
when reclaiming their workstations**.

This driver builds a desktop cluster with resource monitors and
stochastic owners, runs the hotcold benchmark against it, and measures
both the speedup and the distribution of reclaim delays (time from owner
activity to the imd being gone).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster, ClusterConfig, HostSpec
from repro.cluster.idleness import IdlePolicy
from repro.cluster.owner import Owner, OwnerParams
from repro.cluster.workstation import MB
from repro.core.config import DodoConfig
from repro.core.manager import CentralManager
from repro.core.regionlib import RegionCache
from repro.core.rmd import ResourceMonitor
from repro.core.runtime import DodoRuntime
from repro.metrics.report import format_table
from repro.sim import Simulator
from repro.storage.disk import DiskParams
from repro.workloads.app import SyntheticRunner
from repro.workloads.synthetic import SyntheticParams


@dataclass(frozen=True)
class NonDedicatedParams:
    """A scaled desktop cluster (idle window shrunk so recruitment churn
    happens within a short simulation)."""

    n_desktops: int = 8
    desktop_mem: int = 64 * MB
    #: pool per recruited desktop; ~5 idle desktops cover the dataset
    max_pool: int = 2 * MB
    dataset_bytes: int = 8 * MB
    req_size: int = 8192
    num_iter: int = 4
    #: memory sizes follow the 1/128-scaled Section 5.1 proportions
    local_cache: int = 640 * 1024
    fs_cache: int = 128 * 1024
    disk_capacity: int = 25 * MB
    idle_window_s: float = 20.0
    owner_active_mean_s: float = 60.0
    owner_away_mean_s: float = 600.0
    transport: str = "udp"
    seed: int = 9


def build_cluster(sim: Simulator, p: NonDedicatedParams, dodo: bool,
                  config: DodoConfig | None = None):
    """Build the desktop cluster; ``config`` overrides the derived
    :class:`DodoConfig` (the chaos harness uses this to switch on RPC
    backoff and imd heartbeat re-registration)."""
    hosts = [
        HostSpec("app", total_mem_bytes=128 * MB, has_disk=True,
                 fs_cache_bytes=p.fs_cache if dodo
                 else p.fs_cache + p.local_cache,
                 disk_params=DiskParams(capacity_bytes=p.disk_capacity)),
        HostSpec("mgr"),
    ]
    for i in range(p.n_desktops):
        hosts.append(HostSpec(f"w{i}", total_mem_bytes=p.desktop_mem))
    cluster = Cluster(sim, ClusterConfig(hosts=hosts))
    cfg = config or DodoConfig(
        transport=p.transport, store_payload=False, dedicated=False,
        max_pool_bytes=p.max_pool,
        idle_policy=IdlePolicy(window_s=p.idle_window_s))
    rmds, owners = [], []
    cmd = None
    if dodo:
        cmd = CentralManager(sim, cluster["mgr"], cfg)
        for i in range(p.n_desktops):
            ws = cluster[f"w{i}"]
            rmds.append(ResourceMonitor(sim, ws, cfg, cmd_host="mgr"))
            owners.append(Owner(sim, ws, OwnerParams(
                active_mean_s=p.owner_active_mean_s,
                away_mean_s=p.owner_away_mean_s,
                background_job_prob=0.1), start_active=(i % 4 == 0)))
    return cluster, cfg, cmd, rmds, owners


def run_nondedicated(p: NonDedicatedParams | None = None) -> dict:
    """Run baseline and Dodo on the desktop cluster; gather speedup and
    reclaim-delay statistics."""
    p = p or NonDedicatedParams()
    results = {}
    for dodo in (False, True):
        sim = Simulator(seed=p.seed)
        cluster, cfg, cmd, rmds, owners = build_cluster(sim, p, dodo)
        sp = SyntheticParams(pattern="hotcold",
                             dataset_bytes=p.dataset_bytes,
                             req_size=p.req_size, num_iter=p.num_iter)

        class _Plat:  # adapter matching what SyntheticRunner expects
            def __init__(self):
                self.sim = sim
                self.app = cluster["app"]
                self.params = type("P", (), {
                    "local_cache_bytes": p.local_cache})()
                self.config = cfg

            def region_cache(self, policy="lru", local_bytes=None,
                             runtime=None):
                rt = runtime or DodoRuntime(sim, self.app, cfg,
                                            cmd_host="mgr")
                return RegionCache(rt, local_bytes or p.local_cache,
                                   policy=policy)

        platform = _Plat()
        # give the monitors time to recruit the initially idle desktops
        if dodo:
            sim.run(until=p.idle_window_s + 5.0)
        runner = SyntheticRunner(platform, sp, use_dodo=dodo)
        res = sim.run(until=runner.run())
        entry = {"elapsed_s": res.elapsed_s, "result": res}
        if dodo:
            delays = [d for r in rmds
                      for d in r.stats.samples("reclaim_delay_s")]
            entry["reclaims"] = sum(
                r.stats.count("reclaims") for r in rmds)
            entry["recruits"] = sum(
                r.stats.count("recruits") for r in rmds)
            entry["reclaim_delays_s"] = delays
            entry["max_reclaim_delay_s"] = max(delays, default=0.0)
            entry["mean_reclaim_delay_s"] = (
                sum(delays) / len(delays) if delays else 0.0)
        results["dodo" if dodo else "baseline"] = entry
    results["speedup"] = (results["baseline"]["elapsed_s"]
                          / results["dodo"]["elapsed_s"])
    return results


def format_nondedicated(results: dict) -> str:
    """Render the non-dedicated (Table 4) results as a text table."""
    d = results["dodo"]
    rows = [
        ["baseline elapsed", f"{results['baseline']['elapsed_s']:.1f} s"],
        ["dodo elapsed", f"{d['elapsed_s']:.1f} s"],
        ["speedup", f"{results['speedup']:.2f}"],
        ["recruit events", int(d.get("recruits", 0))],
        ["reclaim events", int(d.get("reclaims", 0))],
        ["mean reclaim delay", f"{d.get('mean_reclaim_delay_s', 0) * 1000:.1f} ms"],
        ["max reclaim delay", f"{d.get('max_reclaim_delay_s', 0) * 1000:.1f} ms"],
    ]
    return format_table(["metric", "value"], rows,
                        title="Section 5.3.1: non-dedicated cluster")
