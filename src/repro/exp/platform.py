"""The canonical evaluation platform of Section 5.1, scalable.

The paper's testbed: a 16-node Beowulf cluster (200 MHz Pentium Pro,
128 MB/node, Quantum Fireball disks, 100 Mb/s switched Ethernet).  One
node runs the data-intensive application (its local disk holds the
dataset), one runs the central manager, and twelve run idle memory daemons
with 100 MB pools — 1200 MB of remote memory.  The application's
region-management library gets an 80 MB local cache.

Every size can be scaled down by a single ``scale`` factor that preserves
all the ratios the results depend on (dataset : local cache : remote pool :
file cache : disk span), so benchmarks finish in seconds while keeping the
paper's crossovers.  Disk *timing* is never scaled — only spans — because
seek and rotation costs are absolute.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.cluster.cluster import Cluster, ClusterConfig, HostSpec
from repro.core.config import DodoConfig
from repro.core.imd import IdleMemoryDaemon
from repro.core.manager import CentralManager
from repro.core.regionlib import RegionCache
from repro.core.runtime import DodoRuntime
from repro.core.shard import default_shard_map
from repro.sim import Simulator
from repro.storage.disk import DiskParams
from repro.storage.filesystem import FsParams

MB = 1024 * 1024


@dataclass(frozen=True)
class PlatformParams:
    """Sizes and switches of one platform instance."""

    transport: str = "udp"
    store_payload: bool = False
    n_memory_hosts: int = 12
    #: per-imd pool (paper: 100 MB each => 1200 MB total)
    imd_pool_bytes: int = 100 * MB
    #: region-management library's local cache (paper: 80 MB)
    local_cache_bytes: int = 80 * MB
    #: app node's OS file cache when Dodo is running (the region cache
    #: displaces most of it)
    app_fs_cache_dodo: int = 16 * MB
    #: app node's OS file cache in the no-Dodo baseline (all otherwise
    #: free memory caches files)
    app_fs_cache_baseline: int = 96 * MB
    #: disk capacity (span matters for seek distances)
    disk_capacity_bytes: int = 3_200_000_000
    frame_loss_prob: float = 0.0
    fs_params: Optional[FsParams] = None
    allocator_kind: str = "first-fit"
    #: engage the flow-level bulk fast path (timing-identical; False
    #: forces every transfer through the packet-by-packet simulation)
    bulk_fastpath: bool = True
    #: engage the flow-level datagram (RPC) fast path, same contract
    dgram_fastpath: bool = True
    #: number of region-directory shards (1 + no replication + no
    #: service time = the paper's single manager, byte-identical)
    shards: int = 1
    #: give each shard a log-shipping backup manager
    replication: bool = False
    #: modeled per-directory-op CPU time on each shard manager
    mgr_service_s: float = 0.0

    def scaled(self, scale: float) -> "PlatformParams":
        """Shrink every size by ``scale``, preserving ratios."""
        if scale == 1.0:
            return self
        return replace(
            self,
            imd_pool_bytes=int(self.imd_pool_bytes * scale),
            local_cache_bytes=int(self.local_cache_bytes * scale),
            app_fs_cache_dodo=int(self.app_fs_cache_dodo * scale),
            app_fs_cache_baseline=int(self.app_fs_cache_baseline * scale),
            disk_capacity_bytes=int(self.disk_capacity_bytes * scale),
        )


class Platform:
    """A built evaluation platform: cluster + Dodo daemons + app node."""

    def __init__(self, sim: Simulator, params: PlatformParams | None = None,
                 dodo: bool = True, config: DodoConfig | None = None,
                 faults=None, nemesis_auditor=None):
        self.sim = sim
        self.params = params or PlatformParams()
        p = self.params
        self.dodo_enabled = dodo
        self.config = config or DodoConfig(
            transport=p.transport, store_payload=p.store_payload,
            dedicated=True, max_pool_bytes=p.imd_pool_bytes,
            bulk_fastpath=p.bulk_fastpath, shards=p.shards,
            replication=p.replication, mgr_service_s=p.mgr_service_s)
        cfg = self.config
        #: sharded-directory mode engages whenever any PR 9 knob is on,
        #: so a 1-shard serve-bench run exercises the same code path as
        #: an 8-shard one (fair scaling comparison)
        self.sharded = dodo and (cfg.shards > 1 or cfg.replication
                                 or cfg.mgr_service_s > 0)

        app_cache = p.app_fs_cache_dodo if dodo else p.app_fs_cache_baseline
        hosts = [
            HostSpec("app", total_mem_bytes=128 * MB, has_disk=True,
                     fs_cache_bytes=app_cache, fs_params=p.fs_params,
                     disk_params=DiskParams(
                         capacity_bytes=p.disk_capacity_bytes)),
        ]
        if self.sharded:
            for i in range(cfg.shards):
                hosts.append(HostSpec(f"mgr{i:02d}",
                                      total_mem_bytes=128 * MB))
                if cfg.replication:
                    hosts.append(HostSpec(f"bak{i:02d}",
                                          total_mem_bytes=128 * MB))
        else:
            hosts.append(HostSpec("mgr", total_mem_bytes=128 * MB))
        for i in range(p.n_memory_hosts):
            hosts.append(HostSpec(f"mem{i:02d}", total_mem_bytes=128 * MB))
        self.cluster = Cluster(sim, ClusterConfig(
            hosts=hosts, frame_loss_prob=p.frame_loss_prob,
            store_data=p.store_payload,
            dgram_fastpath=p.dgram_fastpath))

        self.app = self.cluster["app"]
        self.mgr = self.cluster["mgr00" if self.sharded else "mgr"]
        self.cmd: Optional[CentralManager] = None
        self.shard_map = None
        self.cmds: list[CentralManager] = []
        self.backup_cmds: list[CentralManager] = []
        #: sharded mode: shard id -> every manager ever started for it
        #: (append-only, like ``imds``); None on a classic platform —
        #: the nemesis keys its manager_crash dispatch on this
        self.shard_managers: Optional[dict[int, list[CentralManager]]] = \
            None
        self.imds: list[IdleMemoryDaemon] = []
        self.nemesis = None
        if dodo:
            if self.sharded:
                self.shard_map = default_shard_map(cfg.shards,
                                                   cfg.replication)
                self.shard_managers = {}
                for i in range(cfg.shards):
                    primary = CentralManager(
                        sim, self.cluster[f"mgr{i:02d}"], cfg,
                        shard_id=i, shard_map=self.shard_map,
                        peer=f"bak{i:02d}" if cfg.replication else None)
                    self.cmds.append(primary)
                    self.shard_managers[i] = [primary]
                    if cfg.replication:
                        backup = CentralManager(
                            sim, self.cluster[f"bak{i:02d}"], cfg,
                            shard_id=i, shard_map=self.shard_map,
                            role="backup")
                        self.backup_cmds.append(backup)
                        self.shard_managers[i].append(backup)
                self.cmd = self.cmds[0]
            else:
                self.cmd = CentralManager(sim, self.mgr, self.config)
            for i in range(p.n_memory_hosts):
                ws = self.cluster[f"mem{i:02d}"]
                imd = IdleMemoryDaemon(
                    sim, ws, self.config, epoch=1,
                    cmd_host=None if self.sharded else "mgr",
                    pool_bytes=p.imd_pool_bytes,
                    allocator_kind=p.allocator_kind,
                    shard_map=self.shard_map)
                imd.register()
                self.imds.append(imd)
            if faults is not None:
                from repro.faults.nemesis import Nemesis
                self.nemesis = Nemesis(self, faults,
                                       auditor=nemesis_auditor)
                self.nemesis.start()
            sim.run(until=0.5)  # let registrations land
        elif faults is not None:
            raise ValueError("fault injection needs a Dodo platform "
                             "(dodo=True)")

    @property
    def remote_pool_total(self) -> int:
        return self.params.imd_pool_bytes * self.params.n_memory_hosts

    def audit(self, auditor=None, teardown: bool = True):
        """Run the invariant auditor over this platform's components.

        Works with or without an installed telemetry engine — the
        component list is built from the platform's own objects — so
        tests can cross-check a cluster without any global state.
        Returns the findings of this pass.
        """
        from repro.obs.audit import Auditor
        auditor = auditor or Auditor(mode="warn")
        components = [("workstation", ws.name, ws)
                      for ws in self.cluster.workstations.values()]
        components += [("nic", ws.name, ws.nic)
                       for ws in self.cluster.workstations.values()]
        components.append(("network", "network", self.cluster.network))
        if self.shard_managers is not None:
            # role is decided at audit time: a promoted backup counts as
            # a primary, a stopped manager is skipped entirely
            for sid in sorted(self.shard_managers):
                for mgr in self.shard_managers[sid]:
                    if mgr.stopped:
                        continue
                    kind = ("manager" if mgr.role == "primary"
                            else "manager_backup")
                    components.append((kind, f"cmd{sid}", mgr))
        elif self.cmd is not None:
            components.append(("manager", "cmd", self.cmd))
        components += [("imd", imd.ws.name, imd) for imd in self.imds]
        return auditor.audit_components(self.sim, components,
                                        teardown=teardown)

    def live_primary(self, shard: int) -> Optional[CentralManager]:
        """The shard's currently-serving primary, newest first (None
        while failover is still in progress)."""
        if self.shard_managers is None:
            return self.cmd
        for mgr in reversed(self.shard_managers[shard]):
            if not mgr.stopped and mgr.role == "primary":
                return mgr
        return None

    def runtime(self) -> DodoRuntime:
        """A fresh libdodo instance on the app node."""
        if not self.dodo_enabled:
            raise RuntimeError("platform built without Dodo")
        if self.sharded:
            return DodoRuntime(self.sim, self.app, self.config,
                               cmd_host=self.cmds[0].ws.name,
                               shard_map=self.shard_map)
        return DodoRuntime(self.sim, self.app, self.config, cmd_host="mgr")

    def region_cache(self, policy: str = "lru",
                     local_bytes: Optional[int] = None,
                     runtime: Optional[DodoRuntime] = None) -> RegionCache:
        """A fresh libmanage instance over a (new) runtime."""
        rt = runtime or self.runtime()
        return RegionCache(rt, local_bytes or self.params.local_cache_bytes,
                           policy=policy)


def build_platform(sim: Simulator, scale: float = 1.0, dodo: bool = True,
                   faults=None, nemesis_auditor=None, **kwargs) -> Platform:
    """Convenience: a (possibly scaled) Section 5.1 platform."""
    params = PlatformParams(**kwargs).scaled(scale)
    return Platform(sim, params, dodo=dodo, faults=faults,
                    nemesis_auditor=nemesis_auditor)
