"""Figure 8: synthetic-benchmark speedups.

The paper's four panels: speedup of {sequential, hotcold, random} under
Dodo for (A) 8 KB requests / 1 GB dataset, (B) 32 KB / 1 GB, (C) 8 KB /
2 GB, (D) 32 KB / 2 GB, each for UDP and U-Net, with num_iter = 4,
10 ms compute per request, 1.2 GB of remote memory and an 80 MB local
region cache.

Everything runs scaled (default 1/64: 16 MB "1 GB" dataset, 18.75 MB
remote pool, 1.25 MB local cache — all ratios preserved; see
DESIGN.md).  The expected *shape*:

* sequential ≈ 1 everywhere;
* random and hotcold significantly above 1;
* 32 KB requests lower the random/hotcold speedups;
* the 2 GB dataset (exceeding remote memory) lowers random and
  sequential but *raises* hotcold;
* U-Net beats UDP throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exp.platform import MB, Platform, PlatformParams
from repro.metrics.report import format_table
from repro.sim import Simulator
from repro.workloads.app import SyntheticRunner
from repro.workloads.synthetic import SyntheticParams

#: paper dataset sizes, scaled by `scale` at run time
GB = 1 << 30


@dataclass(frozen=True)
class Fig8Point:
    pattern: str
    req_size: int
    dataset_gb: int
    transport: str


def run_point(point: Fig8Point, scale: float = 1 / 64, num_iter: int = 4,
              seed: int = 5) -> dict:
    """One bar of Figure 8: baseline + Dodo run, returns the speedup."""
    dataset = int(point.dataset_gb * GB * scale)
    dataset -= dataset % point.req_size
    results = {}
    for use_dodo in (False, True):
        sim = Simulator(seed=seed)
        params = PlatformParams(
            transport=point.transport, store_payload=False).scaled(scale)
        platform = Platform(sim, params, dodo=use_dodo)
        sp = SyntheticParams(pattern=point.pattern,
                             dataset_bytes=dataset,
                             req_size=point.req_size, num_iter=num_iter)
        runner = SyntheticRunner(platform, sp, use_dodo=use_dodo)
        res = sim.run(until=runner.run())
        results["dodo" if use_dodo else "baseline"] = res
    base, dodo = results["baseline"], results["dodo"]
    return {
        "point": point,
        "baseline_s": base.elapsed_s,
        "dodo_s": dodo.elapsed_s,
        "speedup": base.elapsed_s / dodo.elapsed_s,
        "steady_speedup": base.steady_state_s / dodo.steady_state_s,
    }


def run_panel(req_size: int, dataset_gb: int, scale: float = 1 / 64,
              transports: tuple = ("udp", "unet"),
              patterns: tuple = ("sequential", "hotcold", "random"),
              num_iter: int = 4) -> list[dict]:
    """One panel (A-D) of Figure 8."""
    out = []
    for transport in transports:
        for pattern in patterns:
            out.append(run_point(
                Fig8Point(pattern, req_size, dataset_gb, transport),
                scale=scale, num_iter=num_iter))
    return out


def run_fig8(scale: float = 1 / 64, num_iter: int = 4) -> dict:
    """All four panels."""
    return {
        "A (8K, 1GB)": run_panel(8192, 1, scale, num_iter=num_iter),
        "B (32K, 1GB)": run_panel(32768, 1, scale, num_iter=num_iter),
        "C (8K, 2GB)": run_panel(8192, 2, scale, num_iter=num_iter),
        "D (32K, 2GB)": run_panel(32768, 2, scale, num_iter=num_iter),
    }


def format_fig8(results: dict) -> str:
    blocks = []
    for panel, rows in results.items():
        table_rows = [[r["point"].transport, r["point"].pattern,
                       f"{r['speedup']:.2f}", f"{r['steady_speedup']:.2f}"]
                      for r in rows]
        blocks.append(format_table(
            ["transport", "pattern", "speedup", "steady-state"],
            table_rows, title=f"Figure 8{panel}"))
    return "\n\n".join(blocks)
