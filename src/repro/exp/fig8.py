"""Figure 8: synthetic-benchmark speedups.

The paper's four panels: speedup of {sequential, hotcold, random} under
Dodo for (A) 8 KB requests / 1 GB dataset, (B) 32 KB / 1 GB, (C) 8 KB /
2 GB, (D) 32 KB / 2 GB, each for UDP and U-Net, with num_iter = 4,
10 ms compute per request, 1.2 GB of remote memory and an 80 MB local
region cache.

Everything runs scaled (default 1/64: 16 MB "1 GB" dataset, 18.75 MB
remote pool, 1.25 MB local cache — all ratios preserved; see
DESIGN.md).  The expected *shape*:

* sequential ≈ 1 everywhere;
* random and hotcold significantly above 1;
* 32 KB requests lower the random/hotcold speedups;
* the 2 GB dataset (exceeding remote memory) lowers random and
  sequential but *raises* hotcold;
* U-Net beats UDP throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exp.platform import MB, Platform, PlatformParams
from repro.metrics.report import format_table
from repro.sim import Simulator
from repro.workloads.app import SyntheticRunner
from repro.workloads.synthetic import SyntheticParams

#: paper dataset sizes, scaled by `scale` at run time
GB = 1 << 30


@dataclass(frozen=True)
class Fig8Point:
    """One Figure 8 measurement: access pattern x request size x
    dataset size x transport."""

    pattern: str
    req_size: int
    dataset_gb: int
    transport: str


def run_point(point: Fig8Point, scale: float = 1 / 64, num_iter: int = 4,
              seed: int = 5) -> dict:
    """One bar of Figure 8: baseline + Dodo run, returns the speedup."""
    dataset = int(point.dataset_gb * GB * scale)
    dataset -= dataset % point.req_size
    results = {}
    for use_dodo in (False, True):
        sim = Simulator(seed=seed)
        params = PlatformParams(
            transport=point.transport, store_payload=False).scaled(scale)
        platform = Platform(sim, params, dodo=use_dodo)
        sp = SyntheticParams(pattern=point.pattern,
                             dataset_bytes=dataset,
                             req_size=point.req_size, num_iter=num_iter)
        runner = SyntheticRunner(platform, sp, use_dodo=use_dodo)
        res = sim.run(until=runner.run())
        results["dodo" if use_dodo else "baseline"] = res
    base, dodo = results["baseline"], results["dodo"]
    return {
        "point": point,
        "baseline_s": base.elapsed_s,
        "dodo_s": dodo.elapsed_s,
        "speedup": base.elapsed_s / dodo.elapsed_s,
        "steady_speedup": base.steady_state_s / dodo.steady_state_s,
    }


def panel_points(req_size: int, dataset_gb: int,
                 transports: tuple = ("udp", "unet"),
                 patterns: tuple = ("sequential", "hotcold", "random"),
                 ) -> list[Fig8Point]:
    """The grid of one panel (A-D) of Figure 8, in deterministic order."""
    return [Fig8Point(pattern, req_size, dataset_gb, transport)
            for transport in transports for pattern in patterns]


def run_panel(req_size: int, dataset_gb: int, scale: float = 1 / 64,
              transports: tuple = ("udp", "unet"),
              patterns: tuple = ("sequential", "hotcold", "random"),
              num_iter: int = 4, jobs: int = 1) -> list[dict]:
    """One panel (A-D) of Figure 8.

    The grid executes through the sweep engine's
    :func:`~repro.sweep.engine.parallel_map` — each point is an
    independent simulation, so ``jobs>1`` fans them across worker
    processes with byte-identical results.
    """
    from repro.sweep.engine import parallel_map
    points = panel_points(req_size, dataset_gb, transports, patterns)
    return parallel_map(
        run_point,
        [dict(point=p, scale=scale, num_iter=num_iter) for p in points],
        jobs=jobs)


def run_fig8(scale: float = 1 / 64, num_iter: int = 4,
             jobs: int = 1) -> dict:
    """All four panels; ``jobs`` parallelizes the 24-point grid."""
    from repro.sweep.engine import parallel_map
    panels = [("A (8K, 1GB)", 8192, 1), ("B (32K, 1GB)", 32768, 1),
              ("C (8K, 2GB)", 8192, 2), ("D (32K, 2GB)", 32768, 2)]
    points = [(label, p) for label, req, gb in panels
              for p in panel_points(req, gb)]
    results = parallel_map(
        run_point,
        [dict(point=p, scale=scale, num_iter=num_iter)
         for _label, p in points],
        jobs=jobs)
    out: dict = {label: [] for label, _req, _gb in panels}
    for (label, _point), result in zip(points, results):
        out[label].append(result)
    return out


def format_fig8(results: dict) -> str:
    """Render the four Figure 8 panels as aligned text tables."""
    blocks = []
    for panel, rows in results.items():
        table_rows = [[r["point"].transport, r["point"].pattern,
                       f"{r['speedup']:.2f}", f"{r['steady_speedup']:.2f}"]
                      for r in rows]
        blocks.append(format_table(
            ["transport", "pattern", "speedup", "steady-state"],
            table_rows, title=f"Figure 8{panel}"))
    return "\n\n".join(blocks)
