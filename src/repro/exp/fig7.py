"""Figure 7: speedups for the two real applications, lu and dmine.

Paper results: **lu** 1.2 (U-Net) / 1.15 (UDP) — modest, because lu is
compute-bound (~9% I/O under Dodo); **dmine** 3.2 / 2.6 on runs *after*
the first (the first run populates remote memory and shows ~no speedup;
dmine leaves its regions behind via persistent detach, so later runs
avoid all disk reads).

Both applications are replayed as I/O traces with their real access
patterns and compute models (see :mod:`repro.workloads.lu` /
:mod:`repro.workloads.dmine`), scaled by ``scale`` with all ratios
preserved.  The lu compute rate is calibrated in-driver so the baseline
spends roughly the paper's fraction of its time in I/O; the dmine dataset
sits on scattered extents (aged disk; DESIGN.md discusses why this is
needed to reproduce the measured dmine baseline).
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.exp.platform import MB, Platform, PlatformParams
from repro.metrics.report import format_table
from repro.sim import Simulator
from repro.storage.filesystem import FsParams
from repro.workloads.app import TraceRunner
from repro.workloads.dmine import BLOCK_SIZE, dmine_trace
from repro.workloads.lu import LuParams, lu_trace

GB = 1 << 30

#: paper's Figure 7 values for the comparison column
PAPER_FIG7 = {
    ("lu", "udp"): 1.15, ("lu", "unet"): 1.2,
    ("dmine", "udp"): 2.6, ("dmine", "unet"): 3.2,
}

#: target baseline compute:I/O split for lu — the paper reports ~9% I/O
#: time under Dodo, which back-solves to roughly 23% in the baseline
LU_COMPUTE_OVER_IO = 3.4


def lu_params_for_scale(scale: float) -> LuParams:
    """Shrink the 8192x8192 / 64-column-slab matrix keeping 128 slabs.

    Both dimensions scale by sqrt(scale) so the matrix byte count scales
    by ``scale`` and slab_bytes/local_cache keeps the paper's 20-slabs-
    cached ratio.
    """
    factor = math.sqrt(scale)
    slab_cols = max(2, int(round(64 * factor)))
    n = 128 * slab_cols
    return LuParams(n=n, slab_cols=slab_cols)


def run_lu(transport: str, scale: float = 1 / 64, seed: int = 7,
           bulk_fastpath: bool = True) -> dict:
    """One lu bar: calibrate compute, run baseline and Dodo.

    ``bulk_fastpath=False`` forces every region transfer through the
    packet-by-packet path — simulated results are identical either way
    (the perf-smoke harness uses the pair to measure wall-clock gain).
    """
    params = lu_params_for_scale(scale)

    def build(dodo: bool) -> Platform:
        sim = Simulator(seed=seed)
        # The paper stores the matrix in 8 files; consecutive slabs live
        # in different files, so every slab read pays a seek.  We model
        # that striping as slab-granular extents scattered over the disk.
        p = PlatformParams(
            transport=transport, store_payload=False,
            bulk_fastpath=bulk_fastpath,
            fs_params=FsParams(extent_bytes=params.slab_bytes,
                               scatter=True)).scaled(scale)
        return Platform(sim, p, dodo=dodo)

    # -- calibration: measure pure I/O time of the baseline trace ----------
    platform = build(False)
    io_trace = lu_trace(params, flops_per_s=float("inf"))
    runner = TraceRunner(platform, io_trace, params.matrix_bytes,
                         use_dodo=False, region_bytes=params.slab_bytes,
                         dataset_name="matrix")
    io_only = platform.sim.run(until=runner.run())
    total_flops = sum(
        t.compute_s for t in lu_trace(params, flops_per_s=1.0))
    flops_per_s = total_flops / (LU_COMPUTE_OVER_IO * io_only.elapsed_s)
    trace = lu_trace(params, flops_per_s=flops_per_s)

    results = {}
    for dodo in (False, True):
        platform = build(dodo)
        runner = TraceRunner(platform, trace, params.matrix_bytes,
                             use_dodo=dodo, policy="first-in",
                             region_bytes=params.slab_bytes,
                             dataset_name="matrix")
        results["dodo" if dodo else "baseline"] = \
            platform.sim.run(until=runner.run())
    base, dodo_res = results["baseline"], results["dodo"]
    return {
        "app": "lu", "transport": transport,
        "baseline_s": base.elapsed_s, "dodo_s": dodo_res.elapsed_s,
        "speedup": base.elapsed_s / dodo_res.elapsed_s,
        "baseline_io_fraction":
            1.0 - (total_flops / flops_per_s) / base.elapsed_s,
        "dodo_io_fraction":
            1.0 - (total_flops / flops_per_s) / dodo_res.elapsed_s,
        "paper": PAPER_FIG7[("lu", transport)],
    }


def run_dmine(transport: str, scale: float = 1 / 16, n_passes: int = 3,
              n_runs: int = 2, compute_per_block_s: float = 2.0e-3,
              seed: int = 8) -> dict:
    """The dmine bars: run 1 (populating) and run 2 (regions retained).

    The Dodo runs share one platform: run 1's library detaches with
    ``persist=True`` and run 2's fresh library re-finds the regions, just
    as consecutive dmine processes did on the real cluster.
    """
    dataset = int(1 * GB * scale)
    dataset -= dataset % BLOCK_SIZE
    #: dmine's dataset lives on an aged disk region: extents scattered
    #: across the platter, one per 128 KB block
    fsp = FsParams(extent_bytes=BLOCK_SIZE, scatter=True)

    def trace():
        return dmine_trace(dataset, n_passes,
                           compute_per_block_s=compute_per_block_s)

    # -- baseline: each run is a fresh process reading through the FS ------
    sim = Simulator(seed=seed)
    p = PlatformParams(transport=transport, store_payload=False,
                       fs_params=fsp).scaled(scale)
    platform = Platform(sim, p, dodo=False)
    baseline_runs = []
    for _ in range(n_runs):
        runner = TraceRunner(platform, trace(), dataset, use_dodo=False,
                             region_bytes=BLOCK_SIZE, dataset_name="retail")
        baseline_runs.append(sim.run(until=runner.run()).elapsed_s)

    # -- Dodo: one platform, persistent regions across runs ----------------
    sim = Simulator(seed=seed)
    platform = Platform(sim, p, dodo=True)
    dodo_runs = []
    for _ in range(n_runs):
        cache = platform.region_cache(policy="first-in")
        runner = TraceRunner(platform, trace(), dataset, use_dodo=True,
                             region_bytes=BLOCK_SIZE,
                             dataset_name="retail", cache=cache)
        dodo_runs.append(sim.run(until=runner.run()).elapsed_s)

        def detach():
            yield from cache.detach(persist=True)

        sim.run(until=sim.process(detach()))

    return {
        "app": "dmine", "transport": transport,
        "baseline_s": baseline_runs, "dodo_s": dodo_runs,
        "speedup_run1": baseline_runs[0] / dodo_runs[0],
        "speedup_run2": baseline_runs[-1] / dodo_runs[-1],
        "paper": PAPER_FIG7[("dmine", transport)],
    }


def run_fig7(scale_lu: float = 1 / 64, scale_dmine: float = 1 / 16) -> dict:
    """Run both Figure 7 applications (LU and dmine) at the given
    problem scales; returns their per-configuration run times."""
    out = {}
    for transport in ("udp", "unet"):
        out[("lu", transport)] = run_lu(transport, scale=scale_lu)
        out[("dmine", transport)] = run_dmine(transport, scale=scale_dmine)
    return out


def format_fig7(results: dict) -> str:
    """Render Figure 7 run times as a text table with speedups."""
    rows = []
    for (app, transport), res in results.items():
        if app == "lu":
            rows.append([app, transport, f"{res['speedup']:.2f}",
                         f"{res['paper']:.2f}",
                         f"io: {100 * res['dodo_io_fraction']:.0f}% (dodo)"])
        else:
            rows.append([app, transport, f"{res['speedup_run2']:.2f}",
                         f"{res['paper']:.2f}",
                         f"run1: {res['speedup_run1']:.2f}"])
    return format_table(
        ["app", "transport", "speedup", "paper", "notes"],
        rows, title="Figure 7: application speedups (dmine: run 2)")
