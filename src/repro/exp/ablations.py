"""Ablations of design choices the paper calls out.

1. **Allocator** (Section 4.2): first-fit with periodic coalescing versus
   the buddy scheme the authors name as their fallback — fragmentation,
   failure rate, and internal waste under region churn.
2. **Refraction period** (Section 3.1): with remote memory exhausted, how
   many futile allocation RPCs reach the central manager with and without
   the refraction period, and what it costs/saves the application.
3. **Replacement policy** (Sections 3.3/4.5): first-in versus LRU/MRU for
   a cyclic multi-scan workload — the Uysal-et-al. motivation for
   implementing first-in at all.
4. **Window pre-grant**: latency of small transfers with the offer/window
   handshake versus the grant riding on the setup RPC.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocator import make_allocator
from repro.exp.platform import MB, Platform, PlatformParams
from repro.metrics.report import format_table
from repro.net.bulk import recv_bulk, send_bulk
from repro.sim import Simulator
from repro.workloads.app import SyntheticRunner
from repro.workloads.synthetic import SyntheticParams


# -- 1. allocator ----------------------------------------------------------------

def run_allocator_ablation(pool_mb: int = 64, n_ops: int = 4000,
                           seed: int = 3) -> dict:
    """Region churn against both allocators.

    Region sizes mimic Dodo usage: mostly large, page-multiple regions
    (8 KB - 4 MB, log-uniform), allocations outnumbering frees 60/40
    until the pool is pressured.
    """
    rng = np.random.default_rng(seed)
    sizes = (2 ** rng.uniform(13, 22, size=n_ops)).astype(int)
    frees = rng.random(n_ops)
    out = {}
    for kind in ("first-fit", "buddy"):
        alloc = make_allocator(kind, pool_mb * MB)
        live: list[tuple[int, int]] = []
        failures = 0
        requested_live = 0
        frag_samples = []
        for i in range(n_ops):
            if frees[i] < 0.4 and live:
                idx = int(rng.integers(0, len(live)))
                off, req = live.pop(idx)
                alloc.free(off)
                requested_live -= req
            else:
                off = alloc.alloc(int(sizes[i]))
                if off is None:
                    failures += 1
                else:
                    live.append((off, int(sizes[i])))
                    requested_live += int(sizes[i])
            if i % 50 == 0:
                alloc.coalesce()
                frag_samples.append(alloc.fragmentation())
        internal_waste = alloc.used_bytes - requested_live
        out[kind] = {
            "failures": failures,
            "mean_fragmentation": float(np.mean(frag_samples)),
            "internal_waste_bytes": internal_waste,
            "live_bytes": requested_live,
        }
    return out


def format_allocator_ablation(results: dict) -> str:
    """Render the allocator ablation as an aligned text table."""
    rows = []
    for kind, r in results.items():
        rows.append([kind, r["failures"],
                     f"{r['mean_fragmentation']:.3f}",
                     f"{r['internal_waste_bytes'] / MB:.1f} MB"])
    return format_table(
        ["allocator", "alloc failures", "mean ext. fragmentation",
         "internal waste"],
        rows, title="Ablation: imd pool allocator")


# -- 2. refraction period -----------------------------------------------------------

def run_refraction_ablation(scale: float = 1 / 128,
                            seed: int = 4) -> dict:
    """Random workload with a dataset ~2x remote memory, with and without
    the refraction period."""
    out = {}
    for refraction_s in (0.0, 2.0):
        sim = Simulator(seed=seed)
        params = PlatformParams(store_payload=False).scaled(scale)
        platform = Platform(sim, params, dodo=True)
        # shrink the refraction period through a tweaked config
        object.__setattr__(platform.config, "refraction_period_s",
                           refraction_s)
        dataset = 2 * platform.remote_pool_total
        dataset -= dataset % 8192
        sp = SyntheticParams(pattern="random", dataset_bytes=dataset,
                             req_size=8192, num_iter=2)
        runner = SyntheticRunner(platform, sp, use_dodo=True)
        res = sim.run(until=runner.run())
        out[refraction_s] = {
            "elapsed_s": res.elapsed_s,
            "cmd_enomem_rpcs": platform.cmd.stats.count("alloc.enomem"),
            "refraction_skips": runner.cache.runtime.stats.count(
                "mopen.refraction_skip"),
        }
    return out


def format_refraction_ablation(results: dict) -> str:
    """Render the refraction (reclaim) ablation as a text table."""
    rows = []
    for refraction_s, r in sorted(results.items()):
        rows.append([f"{refraction_s:.1f} s", f"{r['elapsed_s']:.1f}",
                     int(r["cmd_enomem_rpcs"]),
                     int(r["refraction_skips"])])
    return format_table(
        ["refraction", "elapsed s", "failed allocs at cmd",
         "attempts suppressed"],
        rows, title="Ablation: refraction period under memory pressure")


# -- 3. replacement policy ------------------------------------------------------------

def run_policy_ablation(scale: float = 1 / 128, seed: int = 5) -> dict:
    """Cyclic sequential multi-scan under each policy.

    The dataset is ~4x the local cache and remote memory is scarce (one
    small imd), so most of the dataset lives on disk: LRU touches a
    cyclic scan's regions in eviction order and gets no local hits at
    all, while first-in keeps a stable prefix resident — the paper's
    rationale (via Uysal et al.) for implementing first-in.
    """
    out = {}
    for policy in ("lru", "mru", "first-in"):
        sim = Simulator(seed=seed)
        params = PlatformParams(store_payload=False).scaled(scale)
        dataset = 4 * params.local_cache_bytes
        dataset -= dataset % 8192
        from dataclasses import replace
        params = replace(params, n_memory_hosts=1,
                         imd_pool_bytes=dataset // 8)
        platform = Platform(sim, params, dodo=True)
        sp = SyntheticParams(pattern="sequential", dataset_bytes=dataset,
                             req_size=8192, num_iter=4, compute_s=0.002)
        runner = SyntheticRunner(platform, sp, use_dodo=True,
                                 policy=policy)
        res = sim.run(until=runner.run())
        out[policy] = {
            "elapsed_s": res.elapsed_s,
            "local_hits": runner.cache.stats.count("cread.local_hits"),
            "remote_hits": runner.cache.stats.count("cread.remote_hits"),
        }
    return out


def format_policy_ablation(results: dict) -> str:
    """Render the replacement-policy ablation as a text table."""
    rows = [[policy, f"{r['elapsed_s']:.1f}", int(r["local_hits"]),
             int(r["remote_hits"])]
            for policy, r in results.items()]
    return format_table(
        ["policy", "elapsed s", "local hits", "remote hits"],
        rows, title="Ablation: replacement policy on a cyclic multi-scan")


# -- 4. region prefetching (extension) ----------------------------------------------

def run_prefetch_ablation(scale: float = 1 / 128, seed: int = 7,
                          n_scans: int = 3) -> dict:
    """Steady-state cyclic scans with and without region prefetching.

    Prefetching is this reproduction's extension (cf. the paper's
    citation of cooperative prefetching): on sequential access the next
    regions are pulled from remote memory during the application's
    compute time.  The last scan (everything already in remote memory,
    promotions settled) isolates the overlap benefit.
    """
    from repro.core.regionlib import RegionCache
    out = {}
    for prefetch in (0, 2):
        sim = Simulator(seed=seed)
        params = PlatformParams(store_payload=False).scaled(scale)
        platform = Platform(sim, params, dodo=True)
        cache = RegionCache(platform.runtime(), params.local_cache_bytes,
                            policy="lru", prefetch_regions=prefetch)
        dataset = 4 * params.local_cache_bytes
        dataset -= dataset % 8192
        sp = SyntheticParams(pattern="sequential", dataset_bytes=dataset,
                             req_size=8192, num_iter=n_scans)
        runner = SyntheticRunner(platform, sp, use_dodo=True)
        runner.cache = cache
        res = sim.run(until=runner.run())
        out[prefetch] = {
            "last_scan_s": res.iteration_s[-1],
            "elapsed_s": res.elapsed_s,
            "prefetches": cache.stats.count("prefetch.loaded"),
            "local_hits": cache.stats.count("cread.local_hits"),
        }
    return out


def format_prefetch_ablation(results: dict) -> str:
    """Render the prefetch-pipeline ablation as a text table."""
    rows = [[("prefetch=2" if k else "no prefetch"),
             f"{r['last_scan_s']:.2f}", int(r["prefetches"]),
             int(r["local_hits"])]
            for k, r in sorted(results.items())]
    return format_table(
        ["config", "steady scan s", "prefetch loads", "local hits"],
        rows, title="Ablation: region prefetching (extension)")


# -- 5. window pre-grant ----------------------------------------------------------------

def run_pregrant_ablation(size: int = 8192, n: int = 50,
                          transport: str = "udp", seed: int = 6) -> dict:
    """Mean small-transfer latency with and without the negotiation RTT."""
    out = {}
    for pregrant in (False, True):
        sim = Simulator(seed=seed)
        from repro.net import NIC, Network, TransportEndpoint, \
            transport_params
        network = Network(sim)
        eps = {}
        for host in ("a", "b"):
            nic = NIC(sim, host)
            network.attach(nic)
            eps[host] = TransportEndpoint(sim, nic, network,
                                          transport_params(transport))
        times = []

        def sender():
            for _ in range(n):
                tx = eps["a"].socket()
                rx = eps["b"].socket(recvbuf=256 * 1024)  # fresh port
                t0 = sim.now
                recv = sim.process(recv_bulk(rx, pregranted=pregrant,
                                             close_socket=True))
                window = rx.recvbuf if pregrant else None
                yield sim.process(send_bulk(tx, ("b", rx.port), size,
                                            window=window))
                yield recv
                times.append(sim.now - t0)
                tx.close()

        sim.run(until=sim.process(sender()))
        out[pregrant] = {"mean_latency_s": sum(times) / len(times)}
    return out


def format_pregrant_ablation(results: dict) -> str:
    """Render the pre-grant (write fast path) ablation table."""
    rows = [["pre-granted" if k else "offer/window handshake",
             f"{r['mean_latency_s'] * 1e3:.2f} ms"]
            for k, r in results.items()]
    return format_table(["negotiation", "mean 8 KB transfer latency"],
                        rows, title="Ablation: window pre-grant")
