"""Experiment drivers: one module per paper table/figure plus ablations.

* :mod:`repro.exp.platform` — the Section 5.1 evaluation platform
* :mod:`repro.exp.sec2` — Figure 1, Table 1, Figure 2
* :mod:`repro.exp.disk_cal` — the Section 5.1 disk bandwidth table
* :mod:`repro.exp.fig7` — lu and dmine speedups
* :mod:`repro.exp.fig8` — synthetic-benchmark speedup panels A-D
* :mod:`repro.exp.nondedicated` — Section 5.3.1's desktop-cluster claims
* :mod:`repro.exp.ablations` — allocator / refraction / policy / pregrant
* :mod:`repro.exp.scale` — thousand-host scale-out throughput series
"""

from repro.exp.platform import Platform, PlatformParams, build_platform

__all__ = ["Platform", "PlatformParams", "build_platform"]
