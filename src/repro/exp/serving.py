"""The serve-bench experiment: shard-count scaling of the serving tier.

``run_serving`` builds a Section 5.1-style platform whose region
directory is sharded across ``n_shards`` replicated managers — each
with a modeled per-operation CPU cost (``mgr_service_s``), so the
directory is an honest bottleneck — and drives the Zipfian open-loop
serving workload (:mod:`repro.workloads.serving`) against it.
``run_serve_bench`` sweeps the shard count (1/2/4/8 by default) at a
fixed offered load; with one shard the directory saturates — queueing
at the manager inflates p99/p999 and the admission controller starts
rejecting — while more shards divide the per-request lookup traffic by
the hash ring and the tail collapses back to the imd round-trip.  The
series is recorded in ``benchmarks/BENCH_serving.json`` and gated by
``benchmarks/test_bench_serving.py``.

Everything reported is virtual-time-only and byte-identical for a given
seed; ``jobs > 1`` fans points across worker processes via the sweep
engine with identical results (asserted in CI's serving smoke).

The 1-shard point runs the *same* sharded code path as the 8-shard one
(same routing, replication and service-time machinery, a 1-entry hash
ring) so the comparison isolates the shard count itself.
"""

from __future__ import annotations

from repro.exp.platform import MB, Platform, PlatformParams
from repro.metrics.report import format_table
from repro.sim import Simulator
from repro.workloads.serving import ServingParams, ServingTier

#: default shard counts of the serve-bench series
SHARD_COUNTS = (1, 2, 4, 8)


def run_serving(n_shards: int = 1, replication: bool = True,
                seed: int = 21, n_memory_hosts: int = 8,
                mgr_service_s: float = 0.002,
                n_keys: int = 512, value_bytes: int = 16 * 1024,
                zipf_s: float = 1.1, arrival_rate: float = 800.0,
                duration_s: float = 10.0, n_workers: int = 8,
                max_inflight: int = 64, write_fraction: float = 0.1,
                desc_cache: int = 16, engine=None) -> dict:
    """One serving point: JSON-safe, deterministic, no wall-clock."""
    sim = Simulator(seed=seed)
    pool = 2 * ((n_keys * value_bytes) // max(n_memory_hosts, 1))
    params = PlatformParams(
        transport="udp", store_payload=False,
        n_memory_hosts=n_memory_hosts, imd_pool_bytes=pool,
        local_cache_bytes=512 * 1024, app_fs_cache_dodo=1 * MB,
        disk_capacity_bytes=max(64 * MB, 2 * n_keys * value_bytes),
        shards=n_shards, replication=replication,
        mgr_service_s=mgr_service_s)
    platform = Platform(sim, params, dodo=True)
    tier = ServingTier(platform, ServingParams(
        n_keys=n_keys, value_bytes=value_bytes, zipf_s=zipf_s,
        arrival_rate=arrival_rate, duration_s=duration_s,
        n_workers=n_workers, max_inflight=max_inflight,
        write_fraction=write_fraction, desc_cache=desc_cache),
        engine=engine)
    sim.run(until=sim.process(tier.run()))
    out = {
        "shards": n_shards,
        "replication": replication,
        "seed": seed,
        "arrival_rate": arrival_rate,
        "duration_s": duration_s,
        "mgr_service_s": mgr_service_s,
        "n_keys": n_keys,
        "virtual_s": round(sim.now, 6),
    }
    out.update(tier.results())
    out["audit_findings"] = len(platform.audit(teardown=True))
    return out


def run_serve_bench(shard_counts: tuple = SHARD_COUNTS, jobs: int = 1,
                    **kwargs) -> list[dict]:
    """The shard-scaling series; each point an independent simulation."""
    from repro.sweep.engine import parallel_map
    return parallel_map(
        run_serving, [dict(n_shards=n, **kwargs) for n in shard_counts],
        jobs=jobs)


def format_serving(results: list[dict]) -> str:
    """Render the serve-bench series as an aligned text table."""
    rows = []
    for r in results:
        rows.append([
            str(r["shards"]),
            f"{r['throughput_rps']:,.0f}",
            f"{r['offered']:,}",
            f"{r['rejected']:,}",
            f"{r['disk_fallbacks']:,}",
            _fmt_ms(r["p50_ms"]), _fmt_ms(r["p99_ms"]),
            _fmt_ms(r["p999_ms"]),
            f"{100.0 * r['good_fraction']:.2f}%",
        ])
    return format_table(
        ["shards", "rps", "offered", "rejected", "disk", "p50_ms",
         "p99_ms", "p999_ms", "good"],
        rows,
        title="serve-bench: Zipfian open-loop serving vs. shard count")


def _fmt_ms(v) -> str:
    return "-" if v is None else f"{v:.2f}"
