"""Section 5.1 disk microbenchmark: the application-level bandwidth table.

The paper reports for its Quantum Fireball ST3.2A through the file system:
7.75 MB/s for sequential 8 KB and 32 KB reads, 0.57 MB/s for random 8 KB
and 1.56 MB/s for random 32 KB.  This driver measures the same four
numbers against the disk + page-cache model.
"""

from __future__ import annotations

from repro.metrics.report import format_table
from repro.sim import Simulator
from repro.storage.disk import Disk
from repro.storage.filesystem import FileSystem

MB = 1024 * 1024

#: the paper's measured values, bytes/s
PAPER = {
    ("seq", 8192): 7.75e6,
    ("seq", 32768): 7.75e6,
    ("rand", 8192): 0.57e6,
    ("rand", 32768): 1.56e6,
}


def measure(pattern: str, req_size: int, file_mb: int = 2048,
            total_mb: int = 16, cache_mb: int = 8, seed: int = 0) -> float:
    """One microbenchmark point; returns bytes/second."""
    sim = Simulator(seed=seed)
    fs = FileSystem(sim, Disk(sim), cache_bytes=cache_mb * MB)
    fs.create("data", size=file_mb * MB)
    fh = fs.open("data")
    rng = sim.rng("diskcal")
    total = total_mb * MB
    n_req = total // req_size

    def proc():
        off = 0
        for _ in range(n_req):
            if pattern == "seq":
                offset = off
                off += req_size
                if off + req_size > fh.file.size:
                    off = 0
            else:
                offset = int(rng.integers(
                    0, fh.file.size - req_size) // 4096 * 4096)
            yield fs.read(fh, offset, req_size)

    start = sim.now
    sim.run(until=sim.process(proc()))
    return total / (sim.now - start)


def run_disk_calibration() -> dict:
    """All four table entries; random points use smaller volumes since
    each request costs ~15 ms of virtual time."""
    out = {}
    for (pattern, req), paper in PAPER.items():
        total_mb = 16 if pattern == "seq" else (4 if req == 8192 else 8)
        out[(pattern, req)] = {
            "measured": measure(pattern, req, total_mb=total_mb),
            "paper": paper,
        }
    return out


def format_disk_calibration(results: dict) -> str:
    """Render measured disk bandwidths next to the paper's values."""
    rows = []
    for (pattern, req), res in results.items():
        rows.append([f"{pattern} {req // 1024}K",
                     f"{res['measured'] / 1e6:.2f}",
                     f"{res['paper'] / 1e6:.2f}",
                     f"{100 * (res['measured'] / res['paper'] - 1):+.0f}%"])
    return format_table(
        ["access", "measured MB/s", "paper MB/s", "error"],
        rows, title="Section 5.1: application-level disk bandwidth")
