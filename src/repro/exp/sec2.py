"""Section 2 experiments: Figure 1, Table 1 and Figure 2.

These regenerate the memory-availability study from the synthetic trace
generator (:mod:`repro.cluster.memtrace`), printing the same aggregates
the paper reports:

* **Figure 1** — total available memory over time for clusterA/clusterB,
  as "all hosts" and "idle hosts only" series, plus the headline averages
  (paper: A = 3549 / 2747 MB, B = 852 / 742 MB);
* **Table 1** — mean (std) of kernel / file-cache / process / available
  memory per host class;
* **Figure 2** — per-workstation availability variation: median
  availability high, with dips.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.memtrace import (CLUSTER_A_MIX, CLUSTER_B_MIX, TABLE1,
                                    TraceParams, available_series_mb,
                                    cluster_summary, generate_cluster,
                                    generate_host_trace, table1_from_traces)
from repro.metrics.ascii import line_chart, sparkline
from repro.metrics.report import format_table

#: paper's Figure 1 headline numbers, for the comparison column
PAPER_FIG1 = {
    "clusterA": {"all": 3549.0, "idle": 2747.0},
    "clusterB": {"all": 852.0, "idle": 742.0},
}


def run_fig1(seed: int = 42, days: float = 4.0) -> dict:
    """Regenerate Figure 1; returns per-cluster series and summaries."""
    params = TraceParams(duration_s=days * 86400.0)
    rng = np.random.default_rng(seed)
    out = {}
    for name, mix in (("clusterA", CLUSTER_A_MIX), ("clusterB",
                                                    CLUSTER_B_MIX)):
        traces = generate_cluster(rng, mix, params, name=name)
        out[name] = {
            "series": available_series_mb(traces),
            "summary": cluster_summary(traces),
            "paper": PAPER_FIG1[name],
        }
    return out


def format_fig1(results: dict) -> str:
    """Render the Figure 1 idle-memory CDF summary as text."""
    rows = []
    for name, res in results.items():
        s = res["summary"]
        p = res["paper"]
        rows.append([name, f"{s['avg_available_all_mb']:.0f}",
                     f"{p['all']:.0f}",
                     f"{s['avg_available_idle_mb']:.0f}",
                     f"{p['idle']:.0f}",
                     f"{100 * s['frac_available_all']:.0f}%"])
    table = format_table(
        ["cluster", "avail(all) MB", "paper", "avail(idle) MB", "paper",
         "frac of installed"],
        rows, title="Figure 1: average available memory")
    charts = []
    for name, res in results.items():
        series = res["series"]
        charts.append(line_chart(
            series["all_hosts_mb"], height=8,
            title=f"{name}: available MB over time (all hosts / "
                  "idle-hosts-only sparkline below)"))
        charts.append("     " + sparkline(series["idle_hosts_mb"]))
    return table + "\n\n" + "\n".join(charts)


def run_table1(seed: int = 43, days: float = 2.0,
               hosts_per_class: int = 4) -> dict:
    """Regenerate Table 1 from synthetic traces."""
    params = TraceParams(duration_s=days * 86400.0)
    rng = np.random.default_rng(seed)
    mix = {mb: hosts_per_class for mb in TABLE1}
    traces = generate_cluster(rng, mix, params)
    return {"measured": table1_from_traces(traces),
            "paper": TABLE1}


def format_table1(results: dict) -> str:
    """Render Table 1 (idle-host memory statistics) as text."""
    rows = []
    for mb, row in sorted(results["measured"].items()):
        paper = TABLE1[mb]
        rows.append([
            f"{mb}MB",
            f"{row['kernel'][0]:.0f} ({row['kernel'][1]:.0f})",
            f"{paper.kernel_mean:.0f} ({paper.kernel_std:.0f})",
            f"{row['filecache'][0]:.0f}",
            f"{paper.filecache_mean:.0f}",
            f"{row['process'][0]:.0f}",
            f"{paper.process_mean:.0f}",
            f"{row['available'][0]:.0f}",
            f"{paper.available_mean:.0f}",
        ])
    return format_table(
        ["hosts", "kernel KB", "paper", "fcache KB", "paper",
         "process KB", "paper", "avail KB", "paper"],
        rows, title="Table 1: memory by use, measured vs paper")


def run_fig2(seed: int = 44, days: float = 4.0) -> dict:
    """Regenerate Figure 2: one trace per host class."""
    params = TraceParams(duration_s=days * 86400.0)
    rng = np.random.default_rng(seed)
    out = {}
    for mb, stats in sorted(TABLE1.items()):
        tr = generate_host_trace(rng, f"ws-{mb}mb", stats, params)
        avail_frac = tr.available / tr.total_kb
        out[mb] = {
            "trace": tr,
            "median_avail_frac": float(np.median(avail_frac)),
            "min_avail_frac": float(avail_frac.min()),
            "dips_below_20pct": int((avail_frac < 0.2).sum()),
        }
    return out


def format_fig2(results: dict) -> str:
    """Render the Figure 2 recruitable-memory summary as text."""
    rows = []
    for mb, res in sorted(results.items()):
        rows.append([f"{mb}MB",
                     f"{100 * res['median_avail_frac']:.0f}%",
                     f"{100 * res['min_avail_frac']:.0f}%",
                     res["dips_below_20pct"]])
    table = format_table(
        ["host", "median avail", "min avail", "samples below 20%"],
        rows,
        title="Figure 2: per-workstation availability (mostly high, "
              "with dips)")
    charts = [f"{mb:>4}MB  " + sparkline(res["trace"].available, lo=0.0,
                                         hi=float(res["trace"].total_kb))
              for mb, res in sorted(results.items())]
    return table + "\n\n" + "\n".join(charts)
