"""Thousand-host scale-out scenario: the kernel's stress benchmark.

The paper's evaluation tops out at 16 nodes; the interesting systems
question at today's cluster sizes is whether a *user-level* global
memory system still pays off at hundreds-to-thousands of hosts.  This
scenario builds a Section 5.1-style platform with ``n`` hosts — one
application node with the dataset on disk, one central manager, and
``n - 2`` memory hosts each running an idle memory daemon with a small
pool — animates every memory host with a batched
:class:`~repro.cluster.owner.Owner` for background signal churn, and
drives a hot/cold synthetic workload whose misses exercise all three
flow-level fast paths (datagram RPC, bulk transfer, disk batch).

The point of the scenario is *simulator throughput*, not a new paper
figure: it reports wall-clock, events processed, events per second and
peak RSS, which is what ``benchmarks/BENCH_scaling.json`` records and
the CI perf-smoke job gates.  On the calendar-queue kernel a 1000-host
run finishes in a few seconds; on the old binary-heap kernel with
per-packet and per-keystroke events it took minutes.
"""

from __future__ import annotations

import resource
import time

from repro.cluster.owner import Owner, OwnerParams
from repro.exp.platform import MB, Platform, PlatformParams
from repro.metrics.report import format_table
from repro.sim import Simulator
from repro.workloads.app import SyntheticRunner
from repro.workloads.synthetic import SyntheticParams

#: default host counts of the scaling series
HOST_COUNTS = (500, 1000, 2000)


def peak_rss_mb() -> float:
    """Process peak RSS in MB (Linux ``ru_maxrss`` is in KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_scale(n_hosts: int = 1000, seed: int = 11, pattern: str = "hotcold",
              req_size: int = 8192, dataset_mb: int = 24,
              pool_kb_per_host: int = 64, local_cache_mb: int = 2,
              num_iter: int = 2, transport: str = "unet",
              owners: bool = True) -> dict:
    """One scaling point: an ``n_hosts``-cluster run, instrumented.

    Every memory host contributes ``pool_kb_per_host`` of remote memory
    (payloads are never stored, so host count costs control state, not
    data bytes) and, when ``owners`` is on, a stochastic owner process
    generating console/load/memory churn.  The dataset exceeds the local
    region cache, so steady-state misses stream over the network to the
    idle memory daemons.  Returns a JSON-safe dict of throughput and
    footprint measurements.
    """
    if n_hosts < 3:
        raise ValueError("need at least app + mgr + one memory host")
    t0 = time.perf_counter()
    sim = Simulator(seed=seed)
    params = PlatformParams(
        transport=transport, store_payload=False,
        n_memory_hosts=n_hosts - 2,
        imd_pool_bytes=pool_kb_per_host * 1024,
        local_cache_bytes=local_cache_mb * MB,
        app_fs_cache_dodo=2 * MB,
        disk_capacity_bytes=64 * MB)
    platform = Platform(sim, params, dodo=True)
    if owners:
        for i in range(params.n_memory_hosts):
            Owner(sim, platform.cluster[f"mem{i:02d}"],
                  params=OwnerParams(active_mean_s=60.0, away_mean_s=120.0),
                  start_active=bool(i % 2))
    dataset = dataset_mb * MB
    dataset -= dataset % req_size
    runner = SyntheticRunner(platform, SyntheticParams(
        pattern=pattern, dataset_bytes=dataset, req_size=req_size,
        num_iter=num_iter), use_dodo=True)
    t1 = time.perf_counter()
    res = sim.run(until=runner.run())
    t2 = time.perf_counter()

    net = platform.cluster.network.stats
    disk = platform.app.disk.stats
    run_wall = t2 - t1
    return {
        "hosts": n_hosts,
        "seed": seed,
        "virtual_s": sim.now,
        "elapsed_s": res.elapsed_s,
        "requests": res.requests,
        "events": sim.events_processed,
        "build_wall_s": t1 - t0,
        "wall_s": t2 - t0,
        "events_per_sec": sim.events_processed / run_wall if run_wall else 0.0,
        "peak_rss_mb": peak_rss_mb(),
        "fastpath": {
            "dgrams": net.count("fastpath.dgrams"),
            "bulk_transfers": net.count("fastpath.transfers"),
            "disk_batches": disk.count("fastpath.batches"),
        },
    }


def run_scaling(host_counts: tuple = HOST_COUNTS, jobs: int = 1,
                **kwargs) -> list[dict]:
    """The scaling series; each point is an independent simulation.

    ``jobs > 1`` fans the points across worker processes via the sweep
    engine — results are byte-identical at any value, and each worker's
    ``peak_rss_mb`` then reflects that point alone.
    """
    from repro.sweep.engine import parallel_map
    return parallel_map(
        run_scale, [dict(n_hosts=n, **kwargs) for n in host_counts],
        jobs=jobs)


def format_scale(results: list[dict]) -> str:
    """Render the scaling series as an aligned text table."""
    rows = [[str(r["hosts"]), f"{r['virtual_s']:.1f}",
             f"{r['events']:,}", f"{r['wall_s']:.2f}",
             f"{r['events_per_sec']:,.0f}", f"{r['peak_rss_mb']:.0f}",
             f"{r['fastpath']['dgrams']:,.0f}",
             f"{r['fastpath']['disk_batches']:,.0f}"]
            for r in results]
    return format_table(
        ["hosts", "virtual_s", "events", "wall_s", "events/s",
         "peak_rss_mb", "fast_dgrams", "fast_disk"],
        rows, title="Scale-out (calendar-queue kernel, all fast paths)")
