"""Elastic-caching ablation: eviction policies × workloads × migration.

The elastic-caching subsystem (docs/CACHING.md) turns the imd pools
from plain allocators into managed caches: a pluggable eviction policy
(:mod:`repro.core.policy`), an online policy selector, and hotspot-aware
migration that moves a busy donor's hot regions to another donor instead
of letting reclaim destroy them.  This driver measures what each piece
buys, on two deliberately different workloads:

* ``nondedicated`` — the Section 5.3.1 desktop cluster with owners that
  come and go faster than the stock experiment, so reclaims land in the
  middle of the run.  This is the workload where migration matters: a
  reclaimed donor's hot regions either migrate (and become remote hits
  on another donor) or vanish (and become disk refetches).
* ``fig7`` — the dedicated Section 5.1 platform shrunk until the
  dataset does **not** fit in remote + local memory, so every new clone
  needs an eviction.  No owners, no reclaims — this isolates the
  eviction policies themselves.

``run_cache`` executes one cell of the ablation and returns plain
JSON-safe counters; ``run_cache_ablation`` sweeps the policy axis on
both workloads, adds the migration and adaptive variants, and computes
the headline claim — cost-aware migration reduces disk refetches
relative to evict-only reclaim on the non-dedicated workload — which
``benchmarks/BENCH_cache.json`` records and CI gates on.  Grid runs go
through the sweep engine instead: ``repro sweep cache-ablation``.
"""

from __future__ import annotations

from repro.cluster.idleness import IdlePolicy
from repro.core.config import CacheConfig, DodoConfig
from repro.core.regionlib import RegionCache
from repro.core.runtime import DodoRuntime
from repro.exp.nondedicated import NonDedicatedParams, build_cluster
from repro.exp.platform import MB, Platform, PlatformParams
from repro.metrics.report import format_table
from repro.sim import Simulator
from repro.workloads.app import SyntheticRunner
from repro.workloads.synthetic import SyntheticParams

#: workloads ``run_cache`` understands
CACHE_WORKLOADS = ("nondedicated", "fig7")

#: ablation policy axis ("none" = the stock allocator, no eviction)
ABLATION_POLICIES = ("none", "lru", "lfu", "clock", "cost-aware")

#: region size used by both workloads — large enough that migrating a
#: donor's hot set is a handful of bulk transfers, small enough that a
#: scaled pool holds a meaningful number of regions
REGION_BYTES = 64 * 1024


def _cache_config(policy: str, migration: bool, adaptive: bool,
                  migrate_max_bytes: int = 2 * MB) -> CacheConfig:
    """Build the ``DodoConfig.cache`` block for one ablation cell.

    Migration piggybacks on the policy's heat tracking (the manager
    migrates *hot-first*), so it requires an active policy; asking for
    ``migration=True`` with ``policy="none"`` is a contradiction and
    raises :class:`ValueError` rather than silently doing nothing.
    """
    if migration and policy == "none":
        raise ValueError(
            "cache migration needs an eviction policy for heat tracking "
            "(policy='none' disables the cache subsystem entirely)")
    if adaptive and policy == "none":
        raise ValueError(
            "adaptive policy selection needs a starting policy "
            "(policy='none' disables the cache subsystem entirely)")
    return CacheConfig(policy=policy, migration=migration,
                       adaptive=adaptive,
                       migrate_max_bytes=migrate_max_bytes)


def run_cache(policy: str = "none", migration: bool = False,
              adaptive: bool = False, workload: str = "nondedicated",
              seed: int = 9, num_iter: int = 6) -> dict:
    """Run one ablation cell; returns a flat dict of counters.

    The interesting outputs: ``disk_reads`` (refetches — lower is
    better), ``remote_hits``/``migrated_hits`` (reads served from donor
    memory; ``migrated_hits`` counts the ones a migration saved),
    ``evictions``/``switches`` (donor-side policy activity) and the
    ``migrations`` sub-dict (manager-side protocol counters).
    """
    if workload not in CACHE_WORKLOADS:
        raise ValueError(f"unknown cache workload {workload!r}, "
                         f"expected one of {CACHE_WORKLOADS}")
    cache_cfg = _cache_config(policy, migration, adaptive)
    if workload == "nondedicated":
        return _run_nondedicated_cell(cache_cfg, seed, num_iter)
    return _run_fig7_cell(cache_cfg, seed, num_iter)


def _run_nondedicated_cell(cache_cfg: CacheConfig, seed: int,
                           num_iter: int) -> dict:
    """Desktop cluster with fast owner churn: reclaims mid-run."""
    p = NonDedicatedParams(idle_window_s=10.0, owner_active_mean_s=20.0,
                           owner_away_mean_s=80.0, seed=seed)
    sim = Simulator(seed=seed)
    cfg = DodoConfig(transport=p.transport, store_payload=False,
                     dedicated=False, max_pool_bytes=p.max_pool,
                     idle_policy=IdlePolicy(window_s=p.idle_window_s),
                     cache=cache_cfg)
    cluster, cfg, cmd, rmds, owners = build_cluster(sim, p, dodo=True,
                                                    config=cfg)

    # Monitors fork a fresh imd every time a desktop re-idles; poll them
    # so counters of dead incarnations (recorders outlive their daemon)
    # still land in the totals.
    imds: list = []
    seen: set[int] = set()

    def _scan() -> None:
        for rmd in rmds:
            daemon = rmd.imd
            if daemon is not None and id(daemon) not in seen:
                seen.add(id(daemon))
                imds.append(daemon)

    def _track():
        while True:
            _scan()
            yield sim.timeout(1.0)

    sim.process(_track())
    sim.run(until=p.idle_window_s + 5.0)  # initial recruitment

    class _Plat:  # adapter matching what SyntheticRunner expects
        def __init__(self):
            self.sim = sim
            self.app = cluster["app"]
            self.params = type("P", (), {
                "local_cache_bytes": p.local_cache})()
            self.config = cfg

        def region_cache(self, policy="lru", local_bytes=None,
                         runtime=None):
            rt = runtime or DodoRuntime(sim, self.app, cfg,
                                        cmd_host="mgr")
            return RegionCache(rt, local_bytes or p.local_cache,
                               policy=policy)

    sp = SyntheticParams(pattern="hotcold", dataset_bytes=p.dataset_bytes,
                         req_size=p.req_size, num_iter=num_iter,
                         compute_s=0.002)
    runner = SyntheticRunner(_Plat(), sp, use_dodo=True,
                             region_bytes=REGION_BYTES)
    res = sim.run(until=runner.run())
    _scan()
    out = _collect(cache_cfg, "nondedicated", seed, res, runner, cmd, imds)
    out["reclaims"] = int(sum(r.stats.count("reclaims") for r in rmds))
    out["recruits"] = int(sum(r.stats.count("recruits") for r in rmds))
    return out


def _run_fig7_cell(cache_cfg: CacheConfig, seed: int,
                   num_iter: int) -> dict:
    """Dedicated platform under memory pressure: the 4 MB dataset beats
    3 MB of remote pool + 0.5 MB of local cache, so clones evict."""
    sim = Simulator(seed=seed)
    params = PlatformParams(
        transport="udp", store_payload=False, n_memory_hosts=3,
        imd_pool_bytes=1 * MB, local_cache_bytes=512 * 1024,
        app_fs_cache_dodo=256 * 1024, app_fs_cache_baseline=2 * MB,
        disk_capacity_bytes=64 * MB)
    cfg = DodoConfig(transport="udp", store_payload=False, dedicated=True,
                     max_pool_bytes=params.imd_pool_bytes,
                     cache=cache_cfg)
    platform = Platform(sim, params, dodo=True, config=cfg)
    sp = SyntheticParams(pattern="hotcold", dataset_bytes=4 * MB,
                         req_size=8192, num_iter=num_iter,
                         compute_s=0.002)
    runner = SyntheticRunner(platform, sp, use_dodo=True,
                             region_bytes=REGION_BYTES)
    res = sim.run(until=runner.run())
    out = _collect(cache_cfg, "fig7", seed, res, runner, platform.cmd,
                   platform.imds)
    out["reclaims"] = 0
    out["recruits"] = 0
    return out


def _collect(cache_cfg: CacheConfig, workload: str, seed: int, res,
             runner, cmd, imds: list) -> dict:
    """Reduce one cell's component stats to a flat JSON-safe dict."""
    cs = runner.cache.stats
    ms = cmd.stats
    return {
        "workload": workload,
        "policy": cache_cfg.policy,
        "migration": cache_cfg.migration,
        "adaptive": cache_cfg.adaptive,
        "seed": seed,
        "elapsed_s": res.elapsed_s,
        "requests": res.requests,
        "local_hits": int(cs.count("cread.local_hits")),
        "remote_hits": int(cs.count("cread.remote_hits")),
        "disk_reads": int(cs.count("cread.disk_reads")),
        "remote_lost": int(cs.count("cread.remote_lost")),
        "migrated_hits": int(cs.count("cread.migrated_hits")),
        "evictions": int(sum(i.stats.count("cache.evictions")
                             for i in imds)),
        "evicted_bytes": int(sum(i.stats.count("cache.evicted_bytes")
                                 for i in imds)),
        "switches": int(sum(i.stats.count("cache.switches")
                            for i in imds)),
        "entries_evicted": int(ms.count("cache.entries_evicted")),
        "migrations": {
            "attempted": int(ms.count("migrate.attempted")),
            "ok": int(ms.count("migrate.ok")),
            "failed": int(ms.count("migrate.failed")),
            "bytes": int(ms.count("migrate.bytes")),
        },
    }


def run_cache_ablation(seed: int = 9, num_iter: int = 6,
                       policies=ABLATION_POLICIES,
                       workloads=CACHE_WORKLOADS) -> dict:
    """The full ablation: policies × workloads, plus the migration and
    adaptive variants on the non-dedicated workload.

    Returns ``{"rows": [...], "claim": {...}}`` where ``claim`` compares
    cost-aware reclaim with and without migration — the pair the
    ``BENCH_cache.json`` gate pins.
    """
    rows = []
    evict_only = None
    for workload in workloads:
        for policy in policies:
            row = run_cache(policy=policy, workload=workload, seed=seed,
                            num_iter=num_iter)
            rows.append(row)
            if workload == "nondedicated" and policy == "cost-aware":
                evict_only = row
    if evict_only is None:
        evict_only = run_cache(policy="cost-aware",
                               workload="nondedicated", seed=seed,
                               num_iter=num_iter)
        rows.append(evict_only)
    migrate = run_cache(policy="cost-aware", migration=True,
                        workload="nondedicated", seed=seed,
                        num_iter=num_iter)
    rows.append(migrate)
    rows.append(run_cache(policy="lru", adaptive=True,
                          workload="nondedicated", seed=seed,
                          num_iter=num_iter))
    claim = {
        "workload": "nondedicated",
        "policy": "cost-aware",
        "seed": seed,
        "disk_reads_evict_only": evict_only["disk_reads"],
        "disk_reads_migration": migrate["disk_reads"],
        "refetches_saved": (evict_only["disk_reads"]
                            - migrate["disk_reads"]),
        "migrated_hits": migrate["migrated_hits"],
        "migrations_ok": migrate["migrations"]["ok"],
        "migration_reduces_refetches": (migrate["disk_reads"]
                                        < evict_only["disk_reads"]),
    }
    return {"rows": rows, "claim": claim}


def format_cache(results: dict) -> str:
    """Render an ablation (``run_cache_ablation`` output) as a table."""
    rows = []
    for r in results["rows"]:
        variant = r["policy"]
        if r["migration"]:
            variant += "+migrate"
        if r["adaptive"]:
            variant += "+adapt"
        rows.append([
            r["workload"], variant, r["requests"], r["local_hits"],
            r["remote_hits"], r["migrated_hits"], r["disk_reads"],
            r["evictions"], r["migrations"]["ok"],
            f"{r['elapsed_s']:.1f} s",
        ])
    table = format_table(
        ["workload", "policy", "reqs", "local", "remote", "migr.hit",
         "disk", "evict", "migr.ok", "elapsed"],
        rows, title="Elastic-caching ablation")
    claim = results.get("claim")
    if claim is None:
        return table
    verdict = "holds" if claim["migration_reduces_refetches"] else "FAILS"
    return (f"{table}\n"
            f"claim (migration saves refetches, non-dedicated, "
            f"cost-aware): {claim['disk_reads_migration']} vs "
            f"{claim['disk_reads_evict_only']} disk reads "
            f"({claim['refetches_saved']} saved) -- {verdict}")
