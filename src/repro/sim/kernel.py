"""The discrete-event simulation core: events, timeouts and the scheduler.

Time is a ``float`` number of **seconds** of virtual time.  Determinism is a
hard requirement for reproducible experiments, so ties in the event heap are
broken by a monotonically increasing insertion counter, never by object
identity.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Optional

from repro.obs.eventlog import default_eventlog
from repro.obs.timeseries import default_telemetry
from repro.obs.tracer import default_tracer
from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.rng import RngRegistry

_PENDING = object()


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*, becomes *triggered* when given a value (via
    :meth:`succeed` or :meth:`fail`) and *processed* once the scheduler has
    run its callbacks.  Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: callables invoked with this event once it is processed;
        #: ``None`` after processing (further appends are a bug).
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: a failed event whose exception was consumed (e.g. by a waiting
        #: process) sets this so the scheduler does not re-raise it.
        self.defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is queued for processing."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(0.0, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into any process waiting on this event; if
        nobody consumes it, :meth:`Simulator.run` re-raises it to surface
        silent failures.
        """
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._enqueue(0.0, self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(delay, self)


class Simulator:
    """The event loop: a time-ordered heap of triggered events.

    Parameters
    ----------
    seed:
        Master seed for :class:`~repro.sim.rng.RngRegistry`.  Every
        component derives an independent, named stream from it so that
        adding a component never perturbs another's random sequence.
    """

    def __init__(self, seed: int = 0):
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._counter: int = 0
        self.rng = RngRegistry(seed)
        #: number of events processed so far (exposed for perf reporting)
        self.events_processed: int = 0
        #: the observability tracer; the shared NULL_TRACER unless one
        #: was installed (repro.obs.install) before this sim was built.
        #: Instrumentation guards every use with ``tracer.enabled``.
        self.tracer = default_tracer()
        #: the telemetry engine and event log, same install pattern as
        #: the tracer (NULL_* unless opted in before construction)
        self.telemetry = default_telemetry()
        self.eventlog = default_eventlog()
        #: the process currently being resumed (tracks span ownership)
        self.active_process = None
        self._pid_counter: int = 0

    def _next_pid(self) -> int:
        """Deterministic serial number for a new process (trace track)."""
        self._pid_counter += 1
        return self._pid_counter

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- event construction ------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event, to be triggered manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def at(self, when: float, value: Any = None) -> Event:
        """An event firing at the *absolute* virtual time ``when``.

        The absolute counterpart of :meth:`timeout`.  The flow-level bulk
        fast path uses it to complete transfers at analytically computed
        instants that are bit-identical to the packet path's event times —
        ``timeout(when - now)`` cannot guarantee that under float rounding
        (``now + (when - now) != when`` in general).
        """
        if when < self._now:
            raise SimulationError(
                f"at({when}) is in the past (now={self._now})")
        evt = Event(self)
        evt._ok = True
        evt._value = value
        self._counter = count = self._counter + 1
        heappush(self._heap, (when, count, evt))
        return evt

    def process(self, generator) -> "Process":
        """Start a new process from a generator; see :class:`Process`."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> "Event":
        from repro.sim.process import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> "Event":
        from repro.sim.process import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling --------------------------------------------------------
    def _enqueue(self, delay: float, event: Event) -> None:
        self._counter = count = self._counter + 1
        heappush(self._heap, (self._now + delay, count, event))

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none are queued."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        tracer = self.tracer
        if tracer.enabled and tracer.kernel_events:
            tracer.instant(self, "dispatch", "kernel",
                           {"event": type(event).__name__})
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        self.events_processed += 1
        if not event._ok and not event.defused:
            # An unhandled failure: surface it rather than losing it.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain), a float time, or an
        :class:`Event` — in the last case ``run`` returns that event's
        value (re-raising if it failed).
        """
        stop_evt: Optional[Event] = None
        if isinstance(until, Event):
            stop_evt = until
            if stop_evt.processed:
                if stop_evt.ok:
                    return stop_evt.value
                raise stop_evt.value

            def _stop(evt: Event) -> None:
                raise StopSimulation

            stop_evt.callbacks.append(_stop)
            horizon = float("inf")
        elif until is None:
            horizon = float("inf")
        else:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"run(until={horizon}) is in the past (now={self._now})")

        # The dispatch loop is the simulator's hottest code: it inlines
        # step() with the heap, pop function, tracer flags and event
        # counter held in locals, so the common iteration costs one heap
        # pop, one callback sweep and two attribute-free flag checks.
        # step()/peek() remain for external single-stepping.
        heap = self._heap
        pop = heappop
        tracer = self.tracer
        kernel_trace = tracer.enabled and tracer.kernel_events
        processed = 0
        try:
            while heap and heap[0][0] <= horizon:
                when, _, event = pop(heap)
                self._now = when
                if kernel_trace:
                    tracer.instant(self, "dispatch", "kernel",
                                   {"event": type(event).__name__})
                callbacks, event.callbacks = event.callbacks, None
                for cb in callbacks:
                    cb(event)
                processed += 1
                if not event._ok and not event.defused:
                    # An unhandled failure: surface it rather than losing it.
                    raise event._value
        except StopSimulation:
            pass
        finally:
            self.events_processed += processed
        if horizon != float("inf") and self._now < horizon:
            self._now = horizon
        if stop_evt is not None:
            if not stop_evt.triggered:
                raise SimulationError(
                    "run(until=event): queue drained but event never fired")
            if stop_evt.ok:
                return stop_evt.value
            stop_evt.defused = True
            raise stop_evt.value
        return None
