"""The discrete-event simulation core: events, timeouts and the scheduler.

Time is a ``float`` number of **seconds** of virtual time.  Determinism is a
hard requirement for reproducible experiments, so ties in the event queue are
broken by a monotonically increasing insertion counter, never by object
identity.

The pending-event set lives in a **ladder queue** (a calendar queue with a
sorted front; Brown 1988, Tang et al. 2005): a small binary heap — the
*front* — holds every pending event earlier than a moving time fence
``_ftop``, and an array of coarse time buckets (the *calendar*) holds
everything later, indexed by ``floor(when / width)`` modulo the bucket
count.  Dispatch pops the front exactly like the old global heap did —
one C ``heappop`` — but the heap only ever contains the events of the
current fence window, so its depth stays O(1) instead of O(log n) no
matter how many far-future events are pending; those cost a single list
append each.  When the front drains, the fence advances bucket by bucket,
sweeping each bucket's now-due entries into the front.  The bucket width
is re-fit to the observed timestamp distribution (pending-event span /
count) whenever the population outgrows the structure, so both a
microsecond-spaced network burst and multi-second keep-alive timers keep
O(1) amortized access.  Entries are the same ``(when, counter, event)``
triples the old binary heap used, compared the same way, and the front
always holds *every* pending entry below the fence — the dispatch order
is *identical* to the heap's, which the golden-file and differential
determinism tests assert byte-for-byte (see docs/PERFORMANCE.md for the
ordering argument).

Two further hot-path optimizations live here: ``Simulator.timeout``
recycles processed :class:`Timeout` objects from a free pool (the dispatch
loop returns an event to the pool only when its refcount proves nobody can
still observe it), and the dispatch loop inlines the pop/advance so the
common case costs one C heap operation and no Python function calls.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Iterable, Optional

from repro.obs.eventlog import default_eventlog
from repro.obs.timeseries import default_telemetry
from repro.obs.tracer import default_tracer
from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.rng import RngRegistry

_PENDING = object()

#: calendar sizing bounds (powers of two; see _resize)
_MIN_BUCKETS = 16
_MAX_BUCKETS = 1 << 16
#: target entries per bucket: one fence advance sweeps ~this many events
#: into the front, amortizing the Python-level refill across the batch
#: (the per-event front ops are C heap calls on a ~16-entry heap)
_OCCUPANCY = 16
#: the front heap may grow to this many entries before a re-fit is tried
_FGROW_MIN = 1024
#: cap on the recycled-Timeout free pool
_POOL_MAX = 256


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*, becomes *triggered* when given a value (via
    :meth:`succeed` or :meth:`fail`) and *processed* once the scheduler has
    run its callbacks.  Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: callables invoked with this event once it is processed;
        #: ``None`` after processing (further appends are a bug).
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: a failed event whose exception was consumed (e.g. by a waiting
        #: process) sets this so the scheduler does not re-raise it.
        self.defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is queued for processing."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(0.0, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into any process waiting on this event; if
        nobody consumes it, :meth:`Simulator.run` re-raises it to surface
        silent failures.
        """
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._enqueue(0.0, self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(delay, self)


class Simulator:
    """The event loop: a ladder queue of triggered events.

    Parameters
    ----------
    seed:
        Master seed for :class:`~repro.sim.rng.RngRegistry`.  Every
        component derives an independent, named stream from it so that
        adding a component never perturbs another's random sequence.
    """

    # Slots turn the many instance-attribute reads per dispatched event
    # into array indexing instead of dict lookups.  ``_bulk_xfer_ids`` is
    # declared for net/bulk.py, which lazily attaches a per-sim counter.
    __slots__ = ("_now", "_counter", "_front", "_ftop", "_fgrow",
                 "_nbuckets", "_mask", "_buckets", "_width", "_inv_width",
                 "_qcount", "_day", "_tpool", "rng", "events_processed",
                 "tracer", "telemetry", "eventlog", "_trace_kernel",
                 "active_process", "_pid_counter", "_bulk_xfer_ids",
                 "__weakref__")

    def __init__(self, seed: int = 0):
        self._now: float = 0.0
        self._counter: int = 0
        # -- ladder queue --------------------------------------------------
        # Entries are (when, counter, event) triples.  The front heap holds
        # every pending entry with when < _ftop; the calendar buckets hold
        # the rest, each in bucket floor(when/width) & mask.  _day is the
        # absolute bucket index of the fence: _ftop == (_day + 1) * _width,
        # and every calendar entry's bucket index is > _day.  The front
        # list's *identity* is permanent (refill/resize mutate it in
        # place) so the dispatch loop may cache it in a local.
        self._front: list = []
        self._ftop: float = 1.0
        self._fgrow: int = _FGROW_MIN
        self._nbuckets: int = _MIN_BUCKETS
        self._mask: int = _MIN_BUCKETS - 1
        self._buckets: list[list] = [[] for _ in range(_MIN_BUCKETS)]
        self._width: float = 1.0
        self._inv_width: float = 1.0
        #: number of entries in the calendar (the front is sized by len())
        self._qcount: int = 0
        self._day: int = 0
        #: free pool of processed Timeout objects (see run())
        self._tpool: list[Timeout] = []
        self.rng = RngRegistry(seed)
        #: number of events processed so far (exposed for perf reporting)
        self.events_processed: int = 0
        #: the observability tracer; the shared NULL_TRACER unless one
        #: was installed (repro.obs.install) before this sim was built.
        #: Instrumentation guards every use with ``tracer.enabled``.
        self.tracer = default_tracer()
        #: the telemetry engine and event log, same install pattern as
        #: the tracer (NULL_* unless opted in before construction)
        self.telemetry = default_telemetry()
        self.eventlog = default_eventlog()
        #: cached ``tracer.enabled and tracer.kernel_events`` (refreshed at
        #: every run() entry) so the per-resume check is one attribute read
        self._trace_kernel: bool = (
            self.tracer.enabled and self.tracer.kernel_events)
        #: the process currently being resumed (tracks span ownership)
        self.active_process = None
        self._pid_counter: int = 0

    def _next_pid(self) -> int:
        """Deterministic serial number for a new process (trace track)."""
        self._pid_counter += 1
        return self._pid_counter

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- event construction ------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event, to be triggered manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now.

        The hottest constructor in the simulator: it reuses a pooled
        (processed, unobservable) Timeout when one is available and inlines
        both the field setup and the ladder insert, so the common case
        runs one C heappush and no nested Python calls.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        pool = self._tpool
        if pool:
            evt = pool.pop()
            evt.delay = delay
            evt._value = value
        else:
            evt = Timeout.__new__(Timeout)
            evt.sim = self
            evt.callbacks = []
            evt._ok = True
            evt.defused = False
            evt._value = value
            evt.delay = delay
        self._counter = count = self._counter + 1
        when = self._now + delay
        if when < self._ftop:
            front = self._front
            heappush(front, (when, count, evt))
            if len(front) > self._fgrow:
                self._resize()
        else:
            self._place(when, (when, count, evt))
        return evt

    def at(self, when: float, value: Any = None) -> Event:
        """An event firing at the *absolute* virtual time ``when``.

        The absolute counterpart of :meth:`timeout`.  The flow-level fast
        paths use it to complete transfers at analytically computed
        instants that are bit-identical to the packet path's event times —
        ``timeout(when - now)`` cannot guarantee that under float rounding
        (``now + (when - now) != when`` in general).
        """
        if when < self._now:
            raise SimulationError(
                f"at({when}) is in the past (now={self._now})")
        evt = Event(self)
        evt._ok = True
        evt._value = value
        self._counter = count = self._counter + 1
        if when < self._ftop:
            front = self._front
            heappush(front, (when, count, evt))
            if len(front) > self._fgrow:
                self._resize()
        else:
            self._place(when, (when, count, evt))
        return evt

    def call_at(self, when: float, func: Callable[[], None],
                value: Any = None) -> Event:
        """Schedule ``func()`` to run at absolute time ``when``.

        Sugar for ``at(when)`` plus a callback that ignores the event;
        the flow-level fast paths use it for their closed-form completion
        actions (engine releases, deliveries).  Returns the event so the
        caller may also wait on it.
        """
        evt = self.at(when, value)
        evt.callbacks.append(lambda _e: func())
        return evt

    def process(self, generator) -> "Process":
        """Start a new process from a generator; see :class:`Process`."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> "Event":
        from repro.sim.process import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> "Event":
        from repro.sim.process import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling --------------------------------------------------------
    def _enqueue(self, delay: float, event: Event) -> None:
        self._counter = count = self._counter + 1
        when = self._now + delay
        if when < self._ftop:
            # Common case: zero/short delays land inside the fence window.
            front = self._front
            heappush(front, (when, count, event))
            if len(front) > self._fgrow:
                self._resize()
        else:
            self._place(when, (when, count, event))

    def _bucket_index(self, when: float) -> int:
        """Absolute bucket index ``k`` with ``k*width <= when < (k+1)*width``.

        ``int(when * inv_width)`` can land one bucket off under float
        rounding; the two guards repair it so placement and the fence
        windows (which use the same ``k * width`` arithmetic) always
        agree — the property the ordering proof in docs/PERFORMANCE.md
        relies on.
        """
        width = self._width
        k = int(when * self._inv_width)
        if when < k * width:
            k -= 1
        elif when >= (k + 1) * width:
            k += 1
        return k

    def _place(self, when: float, entry: tuple) -> None:
        """Insert a beyond-the-fence ``entry`` into its calendar bucket."""
        self._buckets[self._bucket_index(when) & self._mask].append(entry)
        self._qcount += 1
        # Grow once mean occupancy doubles past target (re-fit leaves it
        # at ~_OCCUPANCY/2, so the trigger stays amortized O(1)).
        if self._qcount > (self._nbuckets * (_OCCUPANCY << 1)) \
                and self._nbuckets < _MAX_BUCKETS:
            self._resize()

    def _resize(self) -> None:
        """Re-fit the ladder to the pending-event distribution.

        Deterministic by construction: triggered purely by the queue
        population crossing a fixed threshold (calendar count > 2x the
        bucket count, or the front heap outgrowing ``_fgrow``), and the
        new width is a pure function of the pending entries — their time
        span divided by their count, i.e. the mean inter-event gap, so
        average bucket occupancy stays O(1).  No clock, no RNG — two
        identical runs resize identically.
        """
        entries = list(self._front)
        for b in self._buckets:
            entries.extend(b)
        n = len(entries)
        nbuckets = _MIN_BUCKETS
        while nbuckets < (n // (_OCCUPANCY >> 1)) and nbuckets < _MAX_BUCKETS:
            nbuckets <<= 1
        if n:
            lo = min(e[0] for e in entries)
            hi = max(e[0] for e in entries)
            span = hi - lo
            width = span * _OCCUPANCY / n if span > 0.0 else self._width
        else:
            lo = self._now
            width = self._width
        if width <= 0.0 or width != width:  # zero/NaN guard
            width = 1.0
        self._nbuckets = nbuckets
        self._mask = mask = nbuckets - 1
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets = buckets = [[] for _ in range(nbuckets)]
        day = self._bucket_index(lo)
        self._day = day
        self._ftop = ftop = (day + 1) * width
        front = self._front
        front[:] = [e for e in entries if e[0] < ftop]
        heapify(front)
        qcount = 0
        index = self._bucket_index
        for e in entries:
            if e[0] >= ftop:
                buckets[index(e[0]) & mask].append(e)
                qcount += 1
        self._qcount = qcount
        # Degenerate distributions (span 0) cannot be split across the
        # fence; doubling the trigger keeps the re-fit amortized O(1).
        self._fgrow = max(_FGROW_MIN, len(front) << 1)

    def _refill(self) -> None:
        """Advance the fence until due entries fill the (empty) front.

        Walks the calendar day by day, sweeping each bucket's entries that
        fall inside the new fence window into the front heap.  If a whole
        rotation finds nothing due (the next event is more than
        nbuckets*width away), jumps straight to the bucket of the globally
        earliest entry.  Called only with ``_qcount > 0`` and an empty
        front.
        """
        if self._qcount < (self._nbuckets >> 3) \
                and self._nbuckets > _MIN_BUCKETS:
            self._resize()
            if self._front:
                return
        buckets, mask, width = self._buckets, self._mask, self._width
        front = self._front
        nbuckets = self._nbuckets
        day = self._day
        scanned = 0
        while True:
            day += 1
            bucket = buckets[day & mask]
            if bucket:
                top = (day + 1) * width
                due = [e for e in bucket if e[0] < top]
                if due:
                    if len(due) == len(bucket):
                        del bucket[:]
                    else:
                        bucket[:] = [e for e in bucket if e[0] >= top]
                    front.extend(due)
                    heapify(front)
                    self._qcount -= len(due)
                    self._day = day
                    self._ftop = top
                    return
            scanned += 1
            if scanned > nbuckets:
                # A full rotation without a due entry: jump to the bucket
                # holding the globally earliest one.
                earliest = min(m for m in (min(b) for b in buckets if b))
                day = self._bucket_index(earliest[0])
                top = (day + 1) * width
                bucket = buckets[day & mask]
                due = [e for e in bucket if e[0] < top]
                bucket[:] = [e for e in bucket if e[0] >= top]
                front.extend(due)
                heapify(front)
                self._qcount -= len(due)
                self._day = day
                self._ftop = top
                return

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none are queued."""
        front = self._front
        if front:
            return front[0][0]
        if self._qcount:
            return min(m for m in (min(b) for b in self._buckets if b))[0]
        return float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        front = self._front
        if not front:
            if not self._qcount:
                raise SimulationError("step() on an empty event queue")
            self._refill()
        when, _, event = heappop(front)
        self._now = when
        tracer = self.tracer
        if tracer.enabled and tracer.kernel_events:
            tracer.instant(self, "dispatch", "kernel",
                           {"event": type(event).__name__})
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        self.events_processed += 1
        if not event._ok and not event.defused:
            # An unhandled failure: surface it rather than losing it.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain), a float time, or an
        :class:`Event` — in the last case ``run`` returns that event's
        value (re-raising if it failed).
        """
        stop_evt: Optional[Event] = None
        if isinstance(until, Event):
            stop_evt = until
            if stop_evt.processed:
                if stop_evt.ok:
                    return stop_evt.value
                raise stop_evt.value

            def _stop(evt: Event) -> None:
                raise StopSimulation

            stop_evt.callbacks.append(_stop)
            horizon = float("inf")
        elif until is None:
            horizon = float("inf")
        else:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"run(until={horizon}) is in the past (now={self._now})")

        # The dispatch loop is the simulator's hottest code: it inlines the
        # ladder pop (the common case is one C heappop from the front), the
        # tracer flag and the Timeout free pool, so one iteration costs one
        # heap operation, one callback sweep and two flag checks.  The
        # front local stays valid because refill/resize mutate the list in
        # place.  step()/peek() remain for external single-stepping.
        tracer = self.tracer
        kernel_trace = tracer.enabled and tracer.kernel_events
        self._trace_kernel = kernel_trace
        pool = self._tpool
        pool_append = pool.append
        front = self._front
        pop = heappop
        processed = 0
        try:
            while True:
                if front:
                    entry = pop(front)
                elif self._qcount:
                    self._refill()
                    entry = pop(front)
                else:
                    break
                when = entry[0]
                if when > horizon:
                    # Not due within this run: put it back and stop.
                    heappush(front, entry)
                    break
                event = entry[2]
                entry = None
                self._now = when
                if kernel_trace:
                    tracer.instant(self, "dispatch", "kernel",
                                   {"event": type(event).__name__})
                callbacks, event.callbacks = event.callbacks, None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for cb in callbacks:
                        cb(event)
                processed += 1
                if event.__class__ is Timeout:
                    # Timeouts are born succeeded, so the failure check is
                    # skipped.  Recycle when nobody can still observe this
                    # event (the two refs are our local and getrefcount's
                    # argument) — the pool reuses object and callback list.
                    if getrefcount(event) == 2 and len(pool) < _POOL_MAX:
                        del callbacks[:]
                        event.callbacks = callbacks
                        pool_append(event)
                elif not event._ok and not event.defused:
                    # An unhandled failure: surface it rather than losing it.
                    raise event._value
        except StopSimulation:
            pass
        finally:
            self.events_processed += processed
        if horizon != float("inf") and self._now < horizon:
            self._now = horizon
        if stop_evt is not None:
            if not stop_evt.triggered:
                raise SimulationError(
                    "run(until=event): queue drained but event never fired")
            if stop_evt.ok:
                return stop_evt.value
            stop_evt.defused = True
            raise stop_evt.value
        return None
