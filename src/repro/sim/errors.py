"""Exception types raised by the simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for errors raised by the DES kernel itself."""


class StopSimulation(Exception):
    """Internal control-flow exception used by :meth:`Simulator.run`."""


class Interrupt(Exception):
    """Thrown *into* a process when another process interrupts it.

    The interrupting party supplies a ``cause`` that the interrupted
    process can inspect — e.g. the idle-memory daemon is interrupted by the
    resource monitor with cause ``"owner-reclaim"`` and reacts by finishing
    in-flight transfers before exiting (paper, Section 4.1).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The value passed to :meth:`Process.interrupt`."""
        return self.args[0]
