"""Generator-based processes and condition events for the DES kernel.

A *process* is a Python generator that yields :class:`~repro.sim.kernel.Event`
objects; the kernel resumes it with the event's value (or throws the event's
exception into it).  A process is itself an event that fires when the
generator returns, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.kernel import Event, Simulator


class Process(Event):
    """Wraps a generator and drives it through the event loop.

    The process event succeeds with the generator's return value, or fails
    with the exception that escaped the generator.  Failures propagate: if
    no other process is waiting on a failed process, the simulator's run
    loop raises the exception, so component crashes are never silent.
    """

    __slots__ = ("_generator", "_target", "pid", "trace_parent", "_rcb")

    def __init__(self, sim: Simulator, generator: Generator[Event, Any, Any]):
        if not hasattr(generator, "send"):
            raise TypeError(f"Process needs a generator, got {generator!r}")
        super().__init__(sim)
        self._generator: Optional[Generator] = generator
        #: deterministic serial number; doubles as the trace track (tid)
        self.pid: int = sim._next_pid()
        #: span open in the spawning process at creation time — the
        #: causal parent for this process's own root spans
        self.trace_parent: int = (
            sim.tracer.current_parent(sim) if sim.tracer.enabled else 0)
        # Bootstrap: resume the generator at time now (after the caller's
        # current callback finishes), mirroring SimPy's Initialize event.
        init = Event(sim)
        init._ok = True
        init._value = None
        sim._enqueue(0.0, init)
        #: cached bound method — appended once per resume on the hot path,
        #: so we pay the bound-method allocation a single time
        self._rcb = self._resume
        init.callbacks.append(self._rcb)
        self._target: Optional[Event] = init

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._generator is not None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process is detached from whatever event it was waiting on; that
        event firing later will not resume it.  Interrupting a terminated
        process is an error (matching SimPy semantics).
        """
        if self._generator is None:
            raise SimulationError("cannot interrupt a terminated process")
        inter = Event(self.sim)
        inter._ok = False
        inter._value = Interrupt(cause)
        self.sim._enqueue(0.0, inter)
        inter.callbacks.append(self._deliver_interrupt)

    def _deliver_interrupt(self, event: Event) -> None:
        """Detach from the current wait target and throw the interrupt.

        Detaching happens at *delivery* time, not at :meth:`interrupt` call
        time — the process may have been bootstrapped or re-targeted by
        same-timestamp events in between.
        """
        event.defused = True
        if self._generator is None:
            return  # terminated before delivery
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._rcb)
            except ValueError:
                pass
        self._resume(event)

    # -- kernel callback ----------------------------------------------------
    def _resume(self, event: Event) -> None:
        if not event._ok:
            event.defused = True  # this process consumes the exception
        generator = self._generator
        if generator is None:
            return  # raced with termination (e.g. double interrupt)
        self._target = None
        sim = self.sim
        prev_active = sim.active_process
        sim.active_process = self
        if sim._trace_kernel:
            sim.tracer.instant(sim, "wakeup", "kernel", {"pid": self.pid})
        try:
            if event._ok:
                nxt = generator.send(event._value)
            else:
                nxt = generator.throw(event._value)
        except StopIteration as stop:
            self._generator = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._generator = None
            self.fail(exc)
            return
        finally:
            sim.active_process = prev_active

        # Duck-typed on the hot path: a yielded Event always has a
        # ``callbacks`` attribute, so the common case pays no isinstance.
        try:
            cbs = nxt.callbacks
        except AttributeError:
            cbs = None
            nxt_is_event = isinstance(nxt, Event)
        else:
            nxt_is_event = True
        if not nxt_is_event:
            self._generator = None
            self.fail(SimulationError(
                f"process yielded a non-event: {nxt!r}"))
            return
        if cbs is None:
            # Already processed: redeliver its outcome on a fresh event so
            # the process resumes on the next scheduler step.
            proxy = Event(sim)
            proxy._ok = nxt._ok
            proxy._value = nxt._value
            sim._enqueue(0.0, proxy)
            nxt = proxy
            cbs = proxy.callbacks
        cbs.append(self._rcb)
        self._target = nxt


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_done")

    def __init__(self, sim: Simulator, events: list[Event]):
        super().__init__(sim)
        self._events = events
        self._done = 0
        if not events:
            self.succeed(self._finish_value())
            return
        for idx, evt in enumerate(events):
            if evt.callbacks is None:
                self._child_done(idx, evt)
            else:
                evt.callbacks.append(
                    lambda e, i=idx: self._child_done(i, e))

    def _child_done(self, idx: int, evt: Event) -> None:
        if self.triggered:
            return
        if not evt._ok:
            evt.defused = True
            self.fail(evt._value)
            return
        self._done += 1
        self._on_child(idx, evt)

    def _on_child(self, idx: int, evt: Event) -> None:  # pragma: no cover
        raise NotImplementedError

    def _finish_value(self) -> Any:  # pragma: no cover
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value is the list of values.

    If any child fails, this condition fails with that child's exception.
    """

    __slots__ = ()

    def _on_child(self, idx: int, evt: Event) -> None:
        if self._done == len(self._events):
            self.succeed(self._finish_value())

    def _finish_value(self) -> list[Any]:
        return [e._value for e in self._events]


class AnyOf(_Condition):
    """Fires when the first child fires; value is ``(index, value)``."""

    __slots__ = ()

    def _on_child(self, idx: int, evt: Event) -> None:
        self.succeed((idx, evt._value))

    def _finish_value(self) -> Any:
        return None
