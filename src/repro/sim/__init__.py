"""Discrete-event simulation substrate.

A small, from-scratch, SimPy-like kernel used by every other subsystem in
this reproduction.  Components are written as Python generator *processes*
that ``yield`` events (timeouts, queue gets, condition events); the
:class:`~repro.sim.kernel.Simulator` advances virtual time and dispatches
callbacks deterministically.

The kernel is deliberately minimal but complete enough to model an entire
workstation cluster: it supports process interruption (used when a resource
monitor kills an idle-memory daemon), condition events (used by ``mwrite``
to join its parallel disk and network writes), FIFO stores (message queues),
and counting resources (disk arms, NIC channels).
"""

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.kernel import Event, Simulator, Timeout
from repro.sim.process import AllOf, AnyOf, Process
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Resource",
    "RngRegistry",
    "Simulator",
    "SimulationError",
    "Store",
    "Timeout",
]
