"""Queueing primitives: counting resources and FIFO / priority stores.

These model contended hardware (a disk arm, a NIC TX engine) and message
queues between daemons.  All wait lists are strictly FIFO so simulations are
deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Optional

from repro.sim.errors import SimulationError
from repro.sim.kernel import Event, Simulator


class Resource:
    """A counting semaphore with FIFO granting.

    Usage from a process::

        yield disk.acquire()
        try:
            ...  # hold the resource
        finally:
            disk.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Event that fires once a unit of the resource is granted."""
        evt = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            evt.succeed()
        else:
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        """Return one unit; grants the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.triggered:  # cancelled
                continue
            waiter.succeed()
            return
        self._in_use -= 1

    def cancel(self, evt: Event) -> bool:
        """Withdraw a pending acquire; returns True if it was still queued."""
        try:
            self._waiters.remove(evt)
            return True
        except ValueError:
            return False


class Store:
    """An unbounded-or-bounded FIFO queue of arbitrary items.

    ``put`` returns an event that fires when the item is accepted (always
    immediately for unbounded stores); ``get`` returns an event whose value
    is the item.  Daemons receive their network messages and control
    messages ("poison pills") through stores.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (read-only view for tests/metrics)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        evt = Event(self.sim)
        getter = self._next_getter()
        if getter is not None:
            getter.succeed(item)
            evt.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            evt.succeed()
        else:
            self._putters.append((evt, item))
        return evt

    def get(self) -> Event:
        evt = Event(self.sim)
        if self._items:
            evt.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(evt)
        return evt

    def cancel(self, evt: Event) -> bool:
        """Withdraw a pending get; returns True if it was still queued."""
        try:
            self._getters.remove(evt)
            return True
        except ValueError:
            return False

    # -- internals ----------------------------------------------------------
    def _next_getter(self) -> Optional[Event]:
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                return getter
        return None

    def _admit_putter(self) -> None:
        if self._putters and len(self._items) < self.capacity:
            evt, item = self._putters.popleft()
            self._items.append(item)
            evt.succeed()


class PriorityStore(Store):
    """A store that hands out the smallest item first.

    Heap entries are ``(key, seq, item)`` triples: ``key`` is the sort key
    (``key(item)``, or the item itself by default), ``seq`` a unique
    insertion serial.  Because ``seq`` never ties, comparison is always
    decided by ``(key, seq)`` and the item itself is **never** compared —
    so equal-priority items need not be orderable, and ties remain strictly
    FIFO.  Pass ``key=`` to store non-comparable payloads (e.g. messages
    prioritized by an integer field); the default identity key requires
    the items themselves to be orderable.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 key: Optional[Any] = None):
        super().__init__(sim, capacity)
        self._heap: list[tuple[Any, int, Any]] = []
        self._seq = itertools.count()
        self._key = key if key is not None else lambda item: item

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> tuple:
        # sorted() compares (key, seq) only — seq is unique, so the
        # comparison never recurses into the items.
        return tuple(item for _, _, item in sorted(self._heap))

    def put(self, item: Any) -> Event:
        evt = Event(self.sim)
        getter = self._next_getter()
        if getter is not None and not self._heap:
            getter.succeed(item)
            evt.succeed()
            return evt
        if getter is not None:
            # Keep ordering: push then pop the minimum for the getter.
            heapq.heappush(self._heap,
                           (self._key(item), next(self._seq), item))
            _, _, smallest = heapq.heappop(self._heap)
            getter.succeed(smallest)
            evt.succeed()
            return evt
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap,
                           (self._key(item), next(self._seq), item))
            evt.succeed()
        else:
            self._putters.append((evt, item))
        return evt

    def get(self) -> Event:
        evt = Event(self.sim)
        if self._heap:
            _, _, item = heapq.heappop(self._heap)
            evt.succeed(item)
            if self._putters and len(self._heap) < self.capacity:
                pevt, pitem = self._putters.popleft()
                heapq.heappush(self._heap,
                               (self._key(pitem), next(self._seq), pitem))
                pevt.succeed()
        else:
            self._getters.append(evt)
        return evt
