"""Named, independent random streams.

Every stochastic component (each disk, each owner model, the packet-loss
injector, ...) pulls a NumPy ``Generator`` keyed by a stable name.  Streams
are derived from the master seed and the CRC of the name, so adding or
removing one component never changes the random sequence any other
component sees — a prerequisite for meaningful A/B experiments.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Factory and cache of named ``numpy.random.Generator`` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use."""
        gen = self._streams.get(name)
        if gen is None:
            entropy = (self.master_seed, zlib.crc32(name.encode("utf-8")))
            gen = np.random.default_rng(np.random.SeedSequence(entropy))
            self._streams[name] = gen
        return gen

    def __call__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def reset(self) -> None:
        """Drop all cached streams (they will be re-derived on next use)."""
        self._streams.clear()
