"""Online invariant auditing: catch silent cross-component divergence.

A distributed-by-construction simulation can rot quietly: the manager's
region directory can drift from what the idle memory daemons actually
host, an allocator's accounting can leak, network counters can stop
conserving datagrams.  The auditor cross-checks those invariants *while
the system runs* — at telemetry sample points — and again at teardown,
when the cluster is quiescent and stronger (race-free) checks apply.

Checks are deliberately conservative: a mid-run pass only asserts
invariants that hold at every instant (e.g. a region directory entry
whose host+epoch the manager currently vouches for must be backed by a
live imd), while checks that are only true of a quiesced system (every
hosted region appears in the directory) run at teardown only.  A clean
run of every shipped experiment must produce **zero findings** — that is
enforced in CI — while a corrupted directory entry must be detected
(``tests/obs/test_audit.py``).

``mode`` selects how loudly divergence fails: ``"warn"`` records
findings (and mirrors them to the event log); ``"raise"`` additionally
raises :class:`AuditError` at the end of the failing pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: audit modes, in increasing loudness
MODES = ("off", "warn", "raise")


class AuditError(AssertionError):
    """Raised in ``raise`` mode when an audit pass finds divergence."""


@dataclass(frozen=True)
class Finding:
    """One detected inconsistency."""

    check: str      # e.g. "directory.missing_region"
    subject: str    # the component / host / key concerned
    detail: str     # human-readable description
    time: float     # virtual time of the audit pass

    def __str__(self) -> str:
        return f"[t={self.time:.3f}] {self.check} {self.subject}: {self.detail}"


class Auditor:
    """Runs invariant checks over the components of one or more runs.

    Wire it into a :class:`~repro.obs.timeseries.Telemetry` (checks run
    at sample points and at ``finalize()``), or call
    :meth:`audit_components` directly with ``(kind, name, obj)`` triples
    (what :meth:`repro.exp.platform.Platform.audit` does).
    """

    def __init__(self, mode: str = "warn", eventlog=None):
        if mode not in MODES:
            raise ValueError(f"unknown audit mode {mode!r}, "
                             f"expected one of {MODES}")
        self.mode = mode
        self.eventlog = eventlog
        self.findings: list[Finding] = []
        self.passes = 0

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    # -- entry points ------------------------------------------------------
    def audit_run(self, run, sim, teardown: bool = False) -> list[Finding]:
        """Audit one telemetry run's registered components."""
        return self.audit_components(sim, run.components, teardown)

    def audit_components(self, sim, components, teardown: bool = False
                         ) -> list[Finding]:
        """One audit pass; returns (and records) this pass's findings.

        ``components`` is an iterable of ``(kind, name, obj)``; in
        ``raise`` mode the pass raises :class:`AuditError` after
        recording everything it found.
        """
        if not self.enabled:
            return []
        self.passes += 1
        by_kind: dict[str, list] = {}
        for kind, _name, obj in components:
            by_kind.setdefault(kind, []).append(obj)
        found: list[Finding] = []
        self._check_directory(sim, by_kind, teardown, found)
        self._check_shards(sim, by_kind, found)
        self._check_replication(sim, by_kind, teardown, found)
        self._check_allocators(sim, by_kind, found)
        self._check_donations(sim, by_kind, found)
        self._check_network(sim, by_kind, found)
        self._check_migration(sim, by_kind, teardown, found)
        for f in found:
            self.findings.append(f)
            log = self.eventlog
            if log is not None and log.enabled:
                log.error(sim, "audit", f.check, host=f.subject,
                          detail=f.detail)
        if found and self.mode == "raise":
            raise AuditError(
                f"audit pass at t={sim.now:.3f} found "
                f"{len(found)} inconsistenc"
                f"{'y' if len(found) == 1 else 'ies'}:\n"
                + "\n".join(f"  {f}" for f in found))
        return found

    def format_report(self) -> str:
        if not self.findings:
            return f"audit: {self.passes} passes, no inconsistencies"
        lines = [f"audit: {self.passes} passes, "
                 f"{len(self.findings)} finding(s):"]
        lines += [f"  {f}" for f in self.findings]
        return "\n".join(lines)

    # -- checks ------------------------------------------------------------
    def _live_imds(self, by_kind) -> dict[tuple[str, int], object]:
        """Live daemons keyed by (host, epoch) — an rmd restarts its imd
        with a fresh epoch, so the pair is unique among live daemons."""
        live = {}
        for imd in by_kind.get("imd", ()):
            if not imd.exited:
                live[(imd.ws.name, imd.epoch)] = imd
        return live

    @staticmethod
    def _crashed_hosts(by_kind) -> set:
        return {ws.name for ws in by_kind.get("workstation", ())
                if ws.crashed}

    @staticmethod
    def _killed_imds(by_kind) -> set:
        """(host, epoch) incarnations that died with their host.  The
        manager discovers such deaths lazily (next RPC timeout), so
        directory entries pointing at them are expected, not divergence."""
        return {(imd.ws.name, imd.epoch) for imd in by_kind.get("imd", ())
                if getattr(imd, "killed", False)}

    def _check_directory(self, sim, by_kind, teardown, found) -> None:
        """Manager region directory vs. what the imds actually host.

        Forward (any time): an RD entry whose (host, epoch) the manager's
        idle-workstation directory still vouches for must be backed by a
        live imd hosting a large-enough allocated region at that offset.
        Reverse (teardown only — mid-run an alloc reply can be in flight
        between the imd and the manager): every region hosted by a
        vouched-for imd must appear in the directory.  With a sharded
        directory the reverse check is against the *union* of all shard
        directories — each shard only knows its own slice.
        """
        live = self._live_imds(by_kind)
        crashed = self._crashed_hosts(by_kind)
        killed = self._killed_imds(by_kind)
        for cmd in by_kind.get("manager", ()):
            vouched: dict[tuple[str, int], object] = {}
            for entry_key, entry in list(cmd.rd.items()):
                s = entry.struct
                iwd = cmd.iwd.get(s.host)
                if iwd is None or iwd.epoch != s.epoch:
                    continue  # stale entry, invalidated lazily by design
                imd = live.get((s.host, s.epoch))
                if imd is None:
                    if s.host in crashed or (s.host, s.epoch) in killed:
                        # hard crash: the manager only learns on its next
                        # RPC timeout — stale vouching is by design
                        continue
                    found.append(Finding(
                        "directory.unbacked", s.host,
                        f"RD entry {entry_key} points at epoch {s.epoch} "
                        f"which the IWD vouches for, but no live imd "
                        f"incarnation exists", sim.now))
                    continue
                vouched[(s.host, s.epoch)] = imd
                hosted = imd._regions.get(s.pool_offset)
                if hosted is None:
                    found.append(Finding(
                        "directory.missing_region", s.host,
                        f"RD entry {entry_key} expects a region at pool "
                        f"offset {s.pool_offset}, imd hosts none there",
                        sim.now))
                    continue
                if hosted < s.length:
                    found.append(Finding(
                        "directory.length_mismatch", s.host,
                        f"RD entry {entry_key} says {s.length} bytes at "
                        f"offset {s.pool_offset}, imd hosts {hosted}",
                        sim.now))
                backing = imd.allocator.allocated_size(s.pool_offset)
                if backing is None or backing < hosted:
                    found.append(Finding(
                        "directory.unallocated", s.host,
                        f"region at offset {s.pool_offset} "
                        f"({hosted} bytes) is not backed by an allocated "
                        f"block (allocator says {backing})", sim.now))
        if not teardown:
            return
        mgrs = list(by_kind.get("manager", ()))
        for (host, epoch), imd in live.items():
            vouchers = [cmd for cmd in mgrs
                        if cmd.iwd.get(host) is not None
                        and cmd.iwd[host].epoch == epoch]
            if not vouchers:
                continue
            in_rd: set[int] = set()
            for cmd in vouchers:
                in_rd |= {e.struct.pool_offset for e in cmd.rd.values()
                          if e.struct.host == host
                          and e.struct.epoch == epoch}
            for offset in imd._regions:
                if offset not in in_rd:
                    found.append(Finding(
                        "directory.orphan_region", host,
                        f"imd hosts a region at offset {offset} that "
                        f"no RD entry in any shard references", sim.now))

    def _check_shards(self, sim, by_kind, found) -> None:
        """Cross-shard exclusivity and routing (any time).

        No region key may appear in two primaries' directories, and a
        sharded primary must only hold keys the hash ring routes to it.
        """
        mgrs = [cmd for cmd in by_kind.get("manager", ())
                if getattr(cmd, "shard_map", None) is not None]
        seen: dict = {}
        for cmd in mgrs:
            for key in cmd.rd:
                other = seen.get(key)
                if other is not None and other != cmd.shard_id:
                    found.append(Finding(
                        "shard.duplicate_key", f"cmd{cmd.shard_id}",
                        f"region key {key} is owned by both shard "
                        f"{other} and shard {cmd.shard_id}", sim.now))
                else:
                    seen[key] = cmd.shard_id
                if cmd.shard_map.n_shards > 1:
                    owner = cmd.shard_map.owner_of(key)
                    if owner != cmd.shard_id:
                        found.append(Finding(
                            "shard.misrouted", f"cmd{cmd.shard_id}",
                            f"region key {key} hashes to shard {owner} "
                            f"but sits in shard {cmd.shard_id}'s "
                            f"directory", sim.now))

    def _check_replication(self, sim, by_kind, teardown, found) -> None:
        """Backup log-shipping vs. primary state.

        Mid-run, a backup may only *lag* its primary (seq monotonicity).
        At teardown (quiesced, and replication not degraded) the backup
        must hold byte-identical directory state: region directory wire
        forms, IWD membership (host/epoch/port — free-space hints are
        deliberately not replicated), and known-client sets.
        """
        backups = {cmd.shard_id: cmd
                   for cmd in by_kind.get("manager_backup", ())}
        if not backups:
            return
        for cmd in by_kind.get("manager", ()):
            bak = backups.get(getattr(cmd, "shard_id", None))
            if bak is None or cmd.peer != bak.ws.name:
                continue
            sid = cmd.shard_id
            if bak.repl_seq > cmd.repl_seq:
                found.append(Finding(
                    "replication.seq", f"cmd{sid}",
                    f"backup applied seq {bak.repl_seq}, primary only "
                    f"shipped {cmd.repl_seq}", sim.now))
            if not teardown or cmd.repl_degraded:
                continue
            if cmd._repl_pending:
                found.append(Finding(
                    "replication.unshipped", f"cmd{sid}",
                    f"{len(cmd._repl_pending)} mutation(s) still "
                    f"queued at quiesce", sim.now))
            p_rd = {str(k): e.struct.to_wire() for k, e in cmd.rd.items()}
            b_rd = {str(k): e.struct.to_wire() for k, e in bak.rd.items()}
            if p_rd != b_rd:
                only_p = sorted(set(p_rd) - set(b_rd))
                only_b = sorted(set(b_rd) - set(p_rd))
                diff = sorted(k for k in set(p_rd) & set(b_rd)
                              if p_rd[k] != b_rd[k])
                found.append(Finding(
                    "replication.rd_divergence", f"cmd{sid}",
                    f"primary-only={only_p} backup-only={only_b} "
                    f"differing={diff}", sim.now))
            p_iwd = {h: (w.epoch, w.port) for h, w in cmd.iwd.items()}
            b_iwd = {h: (w.epoch, w.port) for h, w in bak.iwd.items()}
            if p_iwd != b_iwd:
                found.append(Finding(
                    "replication.iwd_divergence", f"cmd{sid}",
                    f"primary={sorted(p_iwd.items())} "
                    f"backup={sorted(b_iwd.items())}", sim.now))
            if set(cmd.clients) != set(bak.clients):
                found.append(Finding(
                    "replication.client_divergence", f"cmd{sid}",
                    f"primary={sorted(cmd.clients)} "
                    f"backup={sorted(bak.clients)}", sim.now))

    def _check_allocators(self, sim, by_kind, found) -> None:
        """Each live imd's allocator accounting must be self-consistent
        and every hosted region must sit inside an allocated block."""
        for imd in by_kind.get("imd", ()):
            if imd.exited:
                continue
            host = imd.ws.name
            alloc = imd.allocator
            for problem in alloc.check():
                found.append(Finding("allocator.inconsistent", host,
                                     problem, sim.now))
            if alloc.used_bytes + alloc.free_bytes != alloc.pool_size:
                found.append(Finding(
                    "allocator.accounting", host,
                    f"used {alloc.used_bytes} + free {alloc.free_bytes} "
                    f"!= pool {alloc.pool_size}", sim.now))
            if alloc.largest_free() > alloc.free_bytes:
                found.append(Finding(
                    "allocator.accounting", host,
                    f"largest free block {alloc.largest_free()} exceeds "
                    f"total free {alloc.free_bytes}", sim.now))
            for offset, size in imd._regions.items():
                backing = alloc.allocated_size(offset)
                if backing is None or backing < size:
                    found.append(Finding(
                        "allocator.region_unbacked", host,
                        f"hosted region ({offset}, {size}) has allocator "
                        f"backing {backing}", sim.now))

    def _check_donations(self, sim, by_kind, found) -> None:
        """Workstation guest-memory accounting vs. summed live-imd pools,
        and the manager's free-space hints vs. the donating pools."""
        donated: dict[str, int] = {}
        for imd in by_kind.get("imd", ()):
            if not imd.exited:
                donated[imd.ws.name] = donated.get(imd.ws.name, 0) \
                    + imd.pool_bytes
        for ws in by_kind.get("workstation", ()):
            if ws.crashed:
                # a crashed host's memory state is unobservable (and any
                # imd on it was killed with the OS); audit it on recovery
                continue
            expect = donated.get(ws.name, 0)
            if ws.guest_memory != expect:
                found.append(Finding(
                    "donation.accounting", ws.name,
                    f"workstation pins {ws.guest_memory} guest bytes but "
                    f"live imd pools sum to {expect}", sim.now))
        live = self._live_imds(by_kind)
        for cmd in by_kind.get("manager", ()):
            for host, iwd in cmd.iwd.items():
                imd = live.get((host, iwd.epoch))
                if imd is not None and iwd.largest_free > imd.pool_bytes:
                    found.append(Finding(
                        "donation.hint", host,
                        f"IWD free-space hint {iwd.largest_free} exceeds "
                        f"the {imd.pool_bytes}-byte pool", sim.now))

    def _check_network(self, sim, by_kind, found) -> None:
        """Conservation: the fabric can drop traffic (loss, downed NICs)
        but never invent it — per-NIC receive counters must not exceed
        the network's transmit counters."""
        for net in by_kind.get("network", ()):
            nics = [n for n in by_kind.get("nic", ())
                    if n.network is net]
            if not nics:
                continue
            tx_b = net.stats.count("tx.bytes")
            tx_d = net.stats.count("tx.datagrams")
            rx_b = sum(n.stats.count("rx.bytes") for n in nics)
            rx_d = sum(n.stats.count("rx.datagrams") for n in nics)
            if rx_b > tx_b:
                found.append(Finding(
                    "network.conservation", "network",
                    f"NICs received {rx_b} bytes, network only "
                    f"transmitted {tx_b}", sim.now))
            if rx_d > tx_d:
                found.append(Finding(
                    "network.conservation", "network",
                    f"NICs received {rx_d} datagrams, network only "
                    f"transmitted {tx_d}", sim.now))
            if net.stats.count("tx.frames") < tx_d:
                found.append(Finding(
                    "network.conservation", "network",
                    f"{net.stats.count('tx.frames')} frames carried "
                    f"{tx_d} datagrams (need >= 1 frame each)", sim.now))

    def _check_migration(self, sim, by_kind, teardown, found) -> None:
        """Hotspot-migration conservation (docs/CACHING.md).

        Any time: summed destination-side ``migrate.bytes_in`` may never
        exceed summed source-side ``migrate.bytes_out`` — migration can
        lose a transfer (busy source torn down mid-blast) but never
        invent bytes.  The source counts bytes *before* blasting, so the
        inequality holds even mid-transfer.  Imd stat recorders survive
        exit, so exited daemons stay in the sums.  At teardown every
        manager's attempts must be fully accounted:
        ``migrate.attempted == migrate.ok + migrate.failed``.
        """
        imds = list(by_kind.get("imd", ()))
        if imds:
            bytes_out = sum(i.stats.count("migrate.bytes_out")
                            for i in imds)
            bytes_in = sum(i.stats.count("migrate.bytes_in")
                           for i in imds)
            if bytes_in > bytes_out:
                found.append(Finding(
                    "migration.conservation", "imd",
                    f"destinations landed {bytes_in} migrated bytes, "
                    f"sources only sent {bytes_out}", sim.now))
        if not teardown:
            return
        for cmd in by_kind.get("manager", ()):
            attempted = cmd.stats.count("migrate.attempted")
            settled = cmd.stats.count("migrate.ok") \
                + cmd.stats.count("migrate.failed")
            if attempted != settled:
                found.append(Finding(
                    "migration.unaccounted", f"cmd{cmd.shard_id}",
                    f"{attempted} migration attempt(s), only {settled} "
                    f"settled as ok/failed", sim.now))


def make_auditor(mode: str, eventlog=None) -> Optional[Auditor]:
    """Factory used by the CLI: None for mode ``"off"``."""
    if mode == "off":
        return None
    return Auditor(mode=mode, eventlog=eventlog)
