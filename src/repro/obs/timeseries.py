"""Cluster-wide time-series telemetry sampled in virtual time.

The tracer (:mod:`repro.obs.tracer`) answers "what did one operation
do?"; this module answers "what did the *cluster* look like over the
run?" — the state-over-time view behind the paper's availability and
churn claims.  A :class:`Telemetry` engine, installed globally like the
tracer, periodically polls every registered component of every simulator
for *gauges* (donated bytes, hosted regions, free frames, cache hit
ratio, link counters, idleness state, outstanding RPCs) and records them
as typed time series with CSV/JSON export and optional downsampling.

Design rules, shared with the tracer:

* **Zero overhead when disabled.**  Every simulator starts with the
  shared :data:`NULL_TELEMETRY` (``enabled`` is False); components guard
  their registration call with ``sim.telemetry.enabled`` — a plain
  attribute read at construction time, nothing on any hot path.
* **Deterministic.**  Samples are taken at fixed virtual times, probes
  only *read* simulated state (never the wall clock, never an RNG), and
  exports iterate in registration order — two seeded runs of the same
  experiment produce byte-identical CSV/JSON files.
* **Non-perturbing.**  The sampling process adds events to the heap but
  touches no simulated state, so virtual-time results are bit-identical
  with telemetry on or off (enforced by
  ``tests/obs/test_telemetry_determinism.py``).

Components do not write probe code: they call
``sim.telemetry.register(sim, kind, name, self)`` and this module's
probe table extracts the right gauges for each ``kind`` (duck-typed, so
the simulation layers never import the observability layer).  An
optional :class:`~repro.obs.audit.Auditor` attached to the engine runs
its invariant checks at every sample point.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import IO, Callable, Iterable, Optional

from repro.obs.files import atomic_write

#: CSV header written by :meth:`Telemetry.write_csv`
CSV_HEADER = "run,time,kind,name,gauge,unit,value"


class GaugeSeries:
    """One typed time series: (virtual time, value) pairs for one gauge
    of one component instance."""

    __slots__ = ("kind", "name", "gauge", "unit", "times", "values")

    def __init__(self, kind: str, name: str, gauge: str, unit: str):
        self.kind = kind
        self.name = name
        self.gauge = gauge
        self.unit = unit
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"telemetry series {self.key} sampled backwards in time")
        self.times.append(time)
        self.values.append(float(value))

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.kind, self.name, self.gauge)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> float:
        if not self.values:
            raise ValueError(f"empty telemetry series {self.key}")
        return self.values[-1]

    def minimum(self) -> float:
        return min(self.values)

    def maximum(self) -> float:
        return max(self.values)

    def window(self, since: Optional[float] = None,
               until: Optional[float] = None
               ) -> tuple[list[float], list[float]]:
        """The samples with ``since <= time < until`` (either bound may
        be None for unbounded).  Times are monotone (enforced by
        :meth:`record`), so this is a binary-search slice."""
        lo = 0 if since is None else bisect_left(self.times, since)
        hi = len(self.times) if until is None \
            else bisect_left(self.times, until)
        return self.times[lo:hi], self.values[lo:hi]

    def downsampled(self, max_points: Optional[int]
                    ) -> tuple[list[float], list[float]]:
        """Bucket-averaged copy with at most ``max_points`` samples
        (``None`` or a larger budget returns the series unchanged)."""
        n = len(self.times)
        if max_points is None or n <= max_points:
            return list(self.times), list(self.values)
        if max_points < 1:
            raise ValueError(f"max_points must be >= 1, got {max_points}")
        times, values = [], []
        for i in range(max_points):
            a = i * n // max_points
            b = max(a + 1, (i + 1) * n // max_points)
            times.append(sum(self.times[a:b]) / (b - a))
            values.append(sum(self.values[a:b]) / (b - a))
        return times, values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GaugeSeries {'/'.join(self.key)} n={len(self)}>"


# ---------------------------------------------------------------------------
# Probe table: component kind -> [(gauge, unit, value), ...].
#
# Probes are pure reads of simulated state (duck-typed so the simulated
# layers never import this module) and return their gauges in a fixed
# order — both properties the determinism guarantee relies on.
# ---------------------------------------------------------------------------

def _probe_workstation(ws) -> list[tuple[str, str, float]]:
    return [
        ("mem.available_bytes", "bytes", ws.available_memory()),
        ("mem.recruitable_bytes", "bytes", ws.recruitable_memory()),
        ("mem.guest_bytes", "bytes", ws.guest_memory),
        ("mem.filecache_bytes", "bytes", ws.filecache_bytes),
        ("mem.process_bytes", "bytes", ws.mem.process),
        ("load.owner", "load", ws.load_excluding_daemons()),
        ("load.total", "load", ws.load),
        ("up", "bool", 0.0 if ws.crashed else 1.0),
    ]


def _probe_nic(nic) -> list[tuple[str, str, float]]:
    stats = nic.stats
    return [
        ("rx.bytes", "bytes", stats.count("rx.bytes")),
        ("rx.datagrams", "count", stats.count("rx.datagrams")),
        ("rx.dropped", "count",
         stats.count("rx.dropped.down")
         + stats.count("rx.dropped.no_endpoint")
         + stats.count("rx.dropped.no_port")),
        ("up", "bool", 0.0 if nic.down else 1.0),
    ]


def _probe_network(net) -> list[tuple[str, str, float]]:
    stats = net.stats
    return [
        ("tx.bytes", "bytes", stats.count("tx.bytes")),
        ("tx.datagrams", "count", stats.count("tx.datagrams")),
        ("tx.frames", "count", stats.count("tx.frames")),
        ("fastpath.transfers", "count", stats.count("fastpath.transfers")),
        ("fastpath.bytes", "bytes", stats.count("fastpath.bytes")),
        ("bulk.active", "count", len(net._bulk_tokens)),
    ]


def _probe_disk(disk) -> list[tuple[str, str, float]]:
    stats = disk.stats
    return [
        ("read.bytes", "bytes", stats.count("read.bytes")),
        ("write.bytes", "bytes", stats.count("write.bytes")),
        ("read.ops", "count", stats.count("read.ops")),
        ("write.ops", "count", stats.count("write.ops")),
        ("busy", "bool", disk.arm.in_use),
        ("queue", "count", disk.arm.queue_length),
    ]


def _probe_pagecache(cache) -> list[tuple[str, str, float]]:
    return [
        ("resident_bytes", "bytes", cache.resident_bytes),
        ("free_frames", "count",
         max(0, cache.capacity_pages - len(cache))),
        ("hits", "count", cache.stats.count("hits")),
        ("misses", "count", cache.stats.count("misses")),
        ("evictions", "count", cache.stats.count("evictions")),
        ("hit_ratio", "ratio", cache.hit_ratio()),
    ]


def _probe_manager(cmd) -> list[tuple[str, str, float]]:
    return [
        ("iwd.hosts", "count", len(cmd.iwd)),
        ("rd.regions", "count", len(cmd.rd)),
        ("rd.bytes", "bytes",
         sum(e.struct.length for e in cmd.rd.values())),
        ("clients", "count", len(cmd.clients)),
    ]


def _probe_imd(imd) -> list[tuple[str, str, float]]:
    if imd.exited:
        return [
            ("up", "bool", 0.0),
            ("pool.bytes", "bytes", 0.0),
            ("pool.used_bytes", "bytes", 0.0),
            ("pool.largest_free", "bytes", 0.0),
            ("pool.fragmentation", "ratio", 0.0),
            ("regions.hosted", "count", 0.0),
            ("transfers.active", "count", 0.0),
        ]
    alloc = imd.allocator
    return [
        ("up", "bool", 1.0),
        ("pool.bytes", "bytes", imd.pool_bytes),
        ("pool.used_bytes", "bytes", alloc.used_bytes),
        ("pool.largest_free", "bytes", alloc.largest_free()),
        ("pool.fragmentation", "ratio", alloc.fragmentation()),
        ("regions.hosted", "count", len(imd._regions)),
        ("transfers.active", "count", imd.active_transfers),
    ]


def _probe_rmd(rmd) -> list[tuple[str, str, float]]:
    return [
        ("idle_state", "state", rmd.idle_state()),
        ("recruited", "bool", 1.0 if rmd.recruited else 0.0),
        ("quiet_s", "seconds", rmd._quiet_s),
    ]


def _probe_regioncache(cache) -> list[tuple[str, str, float]]:
    states = {"local": 0, "remote": 0, "both": 0, "disk": 0}
    for region in cache.directory.values():
        states[region.state] += 1
    return [
        ("local.used_bytes", "bytes", cache._local_used),
        ("regions.open", "count", len(cache.directory)),
        ("regions.local", "count", states["local"] + states["both"]),
        ("regions.remote", "count", states["remote"] + states["both"]),
        ("regions.disk_only", "count", states["disk"]),
    ]


#: dispatch by the ``kind`` string components register under
PROBES: dict[str, Callable] = {
    "workstation": _probe_workstation,
    "nic": _probe_nic,
    "network": _probe_network,
    "disk": _probe_disk,
    "pagecache": _probe_pagecache,
    "manager": _probe_manager,
    "imd": _probe_imd,
    "rmd": _probe_rmd,
    "regionlib": _probe_regioncache,
}


class RunTelemetry:
    """All telemetry of one simulator: its components and their series."""

    def __init__(self, run_id: int, interval_s: float):
        self.run_id = run_id
        self.interval_s = interval_s
        #: (kind, name, obj) in registration order
        self.components: list[tuple[str, str, object]] = []
        self.series: dict[tuple[str, str, str], GaugeSeries] = {}
        self.samples = 0
        #: RPC calls currently in flight (client side), gauge-sampled
        self.rpc_outstanding = 0
        self.sampler = None

    def objects(self, kind: str) -> list[tuple[str, object]]:
        """Registered (name, obj) pairs of one kind, registration order."""
        return [(n, o) for k, n, o in self.components if k == kind]

    def names(self, kind: str) -> list[str]:
        """Component names of one kind, registration order.

        Falls back to the recorded series keys when no component objects
        are attached — the case for runs rehydrated from a run directory
        (:mod:`repro.obs.fleet.store`), whose JSON export carries series
        but not the live objects behind them.
        """
        if self.components:
            return [n for k, n, _o in self.components if k == kind]
        out: list[str] = []
        for k, n, _g in self.series:  # dict: first-recorded order
            if k == kind and n not in out:
                out.append(n)
        return out

    def kinds(self) -> list[str]:
        """Every component kind with at least one series, first-seen."""
        out: list[str] = []
        for k, _n, _g in self.series:
            if k not in out:
                out.append(k)
        return out

    def select(self, kind: Optional[str] = None,
               name: Optional[str] = None,
               gauge: Optional[str] = None) -> list["GaugeSeries"]:
        """Read API: every series matching the given filters (None
        matches anything), in recording order."""
        return [s for s in self.series.values()
                if (kind is None or s.kind == kind)
                and (name is None or s.name == name)
                and (gauge is None or s.gauge == gauge)]

    def record(self, kind: str, name: str, gauge: str, unit: str,
               time: float, value: float) -> None:
        key = (kind, name, gauge)
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = GaugeSeries(kind, name, gauge, unit)
        series.record(time, value)

    def get(self, kind: str, name: str, gauge: str
            ) -> Optional[GaugeSeries]:
        return self.series.get((kind, name, gauge))

    def duration_s(self) -> float:
        spans = [(s.times[0], s.times[-1])
                 for s in self.series.values() if s.times]
        if not spans:
            return 0.0
        return max(b for _, b in spans) - min(a for a, _ in spans)


class Telemetry:
    """The sampling engine: one per traced *process run*, many simulators.

    Install it like a tracer (:func:`install_telemetry`); every simulator
    created afterwards carries it as ``sim.telemetry``, components
    register themselves at construction, and a per-simulator sampling
    process polls all registered probes every ``interval_s`` of virtual
    time.  ``auditor`` (an :class:`~repro.obs.audit.Auditor`) is invoked
    at every ``audit_every``-th sample point and at :meth:`finalize`.
    """

    def __init__(self, interval_s: float = 1.0,
                 max_samples: int = 200_000,
                 auditor=None, audit_every: int = 1):
        if interval_s <= 0:
            raise ValueError(f"sample interval must be > 0, got {interval_s}")
        if audit_every < 1:
            raise ValueError(f"audit_every must be >= 1, got {audit_every}")
        self.enabled = True
        self.interval_s = interval_s
        #: hard cap per run so a drain-forever simulation cannot grow the
        #: series without bound; the sampler stops (and notes it) there
        self.max_samples = max_samples
        self.auditor = auditor
        self.audit_every = audit_every
        #: optional :class:`~repro.obs.slo.engine.SloEngine` evaluated at
        #: every sample point and at finalize (same hook shape as the
        #: auditor; None costs one attribute read per sample)
        self.slo = None
        self._runs: dict[object, RunTelemetry] = {}
        self._finalized = False

    # -- registration ------------------------------------------------------
    def run_for(self, sim, create: bool = True) -> Optional[RunTelemetry]:
        run = self._runs.get(sim)
        if run is None and create:
            run = self._runs[sim] = RunTelemetry(
                run_id=len(self._runs) + 1, interval_s=self.interval_s)
        return run

    def run_id(self, sim) -> int:
        """Stable 1-based id of a simulator, in first-seen order (shared
        with the event log so both outputs agree on run numbering)."""
        return self.run_for(sim).run_id

    def register(self, sim, kind: str, name: str, obj) -> None:
        """Add one component to ``sim``'s sampled set.

        Called by component constructors, guarded with
        ``sim.telemetry.enabled``.  The first registration for a
        simulator starts its sampling process.
        """
        run = self.run_for(sim)
        run.components.append((kind, str(name), obj))
        if run.sampler is None:
            run.sampler = sim.process(self._sample_loop(sim, run))

    def runs(self) -> list[RunTelemetry]:
        return list(self._runs.values())

    def sims(self) -> list:
        return list(self._runs)

    # -- RPC in-flight gauge ----------------------------------------------
    def rpc_begin(self, sim) -> None:
        self.run_for(sim).rpc_outstanding += 1

    def rpc_end(self, sim) -> None:
        self.run_for(sim).rpc_outstanding -= 1

    # -- sampling ----------------------------------------------------------
    def _sample_loop(self, sim, run: RunTelemetry):
        while run.samples < self.max_samples:
            self.sample_now(sim)
            yield sim.timeout(self.interval_s)

    def sample_now(self, sim) -> None:
        """Take one sample of every registered component right now."""
        run = self._runs.get(sim)
        if run is None:
            return
        t = sim.now
        run.samples += 1
        donated = hosted = hosted_regions = live_imds = 0.0
        recruited = n_rmds = 0.0
        for kind, name, obj in run.components:
            probe = PROBES.get(kind)
            if probe is None:
                continue
            for gauge, unit, value in probe(obj):
                run.record(kind, name, gauge, unit, t, value)
            if kind == "imd" and not obj.exited:
                donated += obj.pool_bytes
                hosted += obj.allocator.used_bytes
                hosted_regions += len(obj._regions)
                live_imds += 1
            elif kind == "rmd":
                n_rmds += 1
                if obj.recruited:
                    recruited += 1
        # cluster-level aggregates, the paper-figure-shaped series
        run.record("cluster", "cluster", "donated_bytes", "bytes", t,
                   donated)
        run.record("cluster", "cluster", "hosted_bytes", "bytes", t, hosted)
        run.record("cluster", "cluster", "hosted_regions", "count", t,
                   hosted_regions)
        run.record("cluster", "cluster", "idle_hosts", "count", t,
                   recruited if n_rmds else live_imds)
        run.record("rpc", "rpc", "outstanding", "count", t,
                   run.rpc_outstanding)
        auditor = self.auditor
        if auditor is not None and auditor.enabled \
                and run.samples % self.audit_every == 0:
            auditor.audit_run(run, sim, teardown=False)
        slo = self.slo
        if slo is not None and slo.enabled:
            slo.sample(run, sim, t)

    def finalize(self) -> None:
        """End-of-run pass: one last sample plus the teardown audit
        (cross-checks that need a quiesced system).  Idempotent."""
        if self._finalized:
            return
        self._finalized = True
        for sim, run in self._runs.items():
            self.sample_now(sim)
            if self.auditor is not None and self.auditor.enabled:
                self.auditor.audit_run(run, sim, teardown=True)
            if self.slo is not None and self.slo.enabled:
                self.slo.finalize(run, sim)

    # -- export ------------------------------------------------------------
    def iter_series(self) -> Iterable[tuple[RunTelemetry, GaugeSeries]]:
        for run in self._runs.values():
            for series in run.series.values():
                yield run, series

    def dump_csv(self, fp: IO[str], max_points: Optional[int] = None) -> int:
        """Write the long-format CSV; returns the number of data rows."""
        fp.write(CSV_HEADER + "\n")
        rows = 0
        for run, series in self.iter_series():
            times, values = series.downsampled(max_points)
            prefix = (f"{run.run_id},%r,{series.kind},{series.name},"
                      f"{series.gauge},{series.unit},%r")
            for t, v in zip(times, values):
                fp.write(prefix % (t, v) + "\n")
                rows += 1
        return rows

    def write_csv(self, path: str, max_points: Optional[int] = None) -> int:
        with atomic_write(path) as fp:
            return self.dump_csv(fp, max_points)

    def to_json(self, meta: Optional[dict] = None,
                max_points: Optional[int] = None) -> dict:
        runs = []
        for run in self._runs.values():
            series = []
            for s in run.series.values():
                times, values = s.downsampled(max_points)
                series.append({"kind": s.kind, "name": s.name,
                               "gauge": s.gauge, "unit": s.unit,
                               "times": times, "values": values})
            runs.append({"run": run.run_id, "interval_s": run.interval_s,
                         "samples": run.samples, "series": series})
        return {"meta": meta or {}, "runs": runs}

    def write_json(self, path: str, meta: Optional[dict] = None,
                   max_points: Optional[int] = None) -> int:
        obj = self.to_json(meta, max_points)
        with atomic_write(path) as fp:
            json.dump(obj, fp, sort_keys=True, separators=(",", ":"))
            fp.write("\n")
        return sum(len(r["series"]) for r in obj["runs"])


class _NullTelemetry(Telemetry):
    """The shared do-nothing engine: ``enabled`` is False and
    registration is inert, so un-guarded calls stay safe."""

    def __init__(self):
        super().__init__()
        self.enabled = False

    def register(self, sim, kind, name, obj):  # noqa: ARG002
        return None

    def rpc_begin(self, sim):  # noqa: ARG002
        return None

    def rpc_end(self, sim):  # noqa: ARG002
        return None

    def sample_now(self, sim):  # noqa: ARG002
        return None


#: the default, disabled engine every Simulator starts with
NULL_TELEMETRY = _NullTelemetry()

_default: Telemetry = NULL_TELEMETRY


def install_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Set the engine handed to every *subsequently created* Simulator.

    Pass None (or :data:`NULL_TELEMETRY`) to disable again.  Returns the
    previously installed engine so callers can restore it.
    """
    global _default
    previous = _default
    _default = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


def default_telemetry() -> Telemetry:
    """The currently installed engine (:data:`NULL_TELEMETRY` unless a
    caller opted in via :func:`install_telemetry`)."""
    return _default
