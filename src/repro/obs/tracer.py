"""Span-based tracing in virtual time.

Every layer of the simulated Dodo stack (runtime library, RPC, bulk
protocol, central manager, idle memory daemons, disk, page cache) can
record *spans*: named intervals of virtual time with a component label,
free-form tags, and causal links.  Causality comes from two sources:

* spans opened on the same *track* (one track per simulated process)
  nest — a span begun while another is open becomes its child;
* a process spawned while a span is open inherits that span as the
  parent for its own root spans, so a request that fans out into helper
  processes (an ``mread``'s receiver and RPC racers, an RPC server's
  per-request handler) keeps its causal chain.

Tracing must cost ~nothing when off: components hold a reference to the
simulator's tracer and guard every call with ``tracer.enabled`` (a plain
attribute read).  The default tracer is the shared :data:`NULL_TRACER`
whose ``enabled`` is False; :func:`install` swaps in a live tracer for
simulators created afterwards (the CLI's ``--trace-out`` does this).

The tracer is deliberately ignorant of wall-clock time and of any other
nondeterministic input, so a traced run of a seeded experiment produces
a byte-identical export every time — that property is enforced by a
regression test.
"""

from __future__ import annotations

import sys
from typing import Any, Optional


class Span:
    """One named interval of virtual time on one track."""

    __slots__ = ("span_id", "parent_id", "name", "component", "track",
                 "start", "end", "tags")

    def __init__(self, span_id: int, parent_id: int, name: str,
                 component: str, track: int, start: float,
                 tags: Optional[dict] = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.component = component
        self.track = track
        self.start = start
        #: None while the span is open; set by :meth:`Tracer.end`
        self.end: Optional[float] = None
        self.tags: Optional[dict] = tags

    @property
    def duration(self) -> float:
        """Span length in virtual seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def tag(self, key: str, value: Any) -> None:
        if self.tags is None:
            self.tags = {}
        self.tags[key] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span #{self.span_id} {self.component}/{self.name} "
                f"[{self.start}, {self.end}]>")


class Tracer:
    """Collects spans and instant events from one or more simulators.

    The tracer never reads wall-clock time or random state; all times
    come from the simulator's virtual clock, so traces are deterministic.
    ``kernel_events=True`` additionally records one instant event per
    scheduler dispatch and process wakeup — very detailed and very
    large, off by default even when tracing.
    """

    def __init__(self, enabled: bool = True, kernel_events: bool = False):
        self.enabled = enabled
        self.kernel_events = kernel_events
        #: all spans in begin order (instants have ``end == start``)
        self.spans: list[Span] = []
        #: optional span-end observer (``on_span_end(sim, span)``) — the
        #: SLI collector (:mod:`repro.obs.slo.sli`) attaches here; None
        #: costs one attribute read per span end
        self.sink = None
        self._next_id = 0
        #: open-span stacks keyed by track (simulated-process id)
        self._stacks: dict[int, list[Span]] = {}

    # -- context --------------------------------------------------------------
    @staticmethod
    def _track_of(sim) -> int:
        proc = getattr(sim, "active_process", None)
        return proc.pid if proc is not None else 0

    def current_parent(self, sim) -> int:
        """The span id new work started *now* should be parented to:
        the innermost open span of the running process, falling back to
        the span that was open when the process itself was spawned."""
        proc = getattr(sim, "active_process", None)
        track = proc.pid if proc is not None else 0
        stack = self._stacks.get(track)
        if stack:
            return stack[-1].span_id
        return proc.trace_parent if proc is not None else 0

    # -- recording ------------------------------------------------------------
    def begin(self, sim, name: str, component: str,
              tags: Optional[dict] = None) -> Span:
        """Open a span at the current virtual time on the current track."""
        proc = getattr(sim, "active_process", None)
        track = proc.pid if proc is not None else 0
        stack = self._stacks.setdefault(track, [])
        if stack:
            parent = stack[-1].span_id
        else:
            parent = proc.trace_parent if proc is not None else 0
        self._next_id += 1
        span = Span(self._next_id, parent, name, component, track,
                    sim.now, tags)
        stack.append(span)
        self.spans.append(span)
        return span

    def end(self, sim, span: Optional[Span],
            tags: Optional[dict] = None) -> None:
        """Close a span (idempotent; tolerates ``span=None`` so callers
        can hold None when tracing was off at begin time)."""
        if span is None or span.end is not None:
            return
        if isinstance(sys.exception(), GeneratorExit):
            # The instrumented generator is being torn down (the run
            # ended with this operation still in flight, and garbage
            # collection is closing the abandoned process).  The
            # operation never completed in virtual time, so leave the
            # span open — it exports as "unfinished".  Ending it here
            # would make the trace depend on *when* the collector runs.
            return
        span.end = sim.now
        if tags:
            for k, v in tags.items():
                span.tag(k, v)
        stack = self._stacks.get(span.track)
        if stack and span in stack:
            stack.remove(span)
        sink = self.sink
        if sink is not None:
            sink.on_span_end(sim, span)

    def instant(self, sim, name: str, component: str,
                tags: Optional[dict] = None) -> Span:
        """A zero-duration marker (exported as a Chrome instant event)."""
        span = self.begin(sim, name, component, tags)
        self.end(sim, span)
        return span

    # -- inspection -----------------------------------------------------------
    def finished(self) -> list[Span]:
        return [s for s in self.spans if s.end is not None]

    def components(self) -> set[str]:
        return {s.component for s in self.spans}

    def clear(self) -> None:
        self.spans.clear()
        self._stacks.clear()
        self._next_id = 0


class _NullTracer(Tracer):
    """The shared do-nothing tracer: ``enabled`` is False and all
    recording methods are inert, so un-guarded calls stay safe."""

    def __init__(self):
        super().__init__(enabled=False)

    def begin(self, sim, name, component, tags=None):  # noqa: ARG002
        return None

    def end(self, sim, span, tags=None):  # noqa: ARG002
        return None

    def instant(self, sim, name, component, tags=None):  # noqa: ARG002
        return None


#: the default, disabled tracer every Simulator starts with
NULL_TRACER = _NullTracer()

_default: Tracer = NULL_TRACER


def install(tracer: Optional[Tracer]) -> Tracer:
    """Set the tracer handed to every *subsequently created* Simulator.

    Pass None (or :data:`NULL_TRACER`) to disable tracing again.
    Returns the previously installed tracer so callers can restore it.
    """
    global _default
    previous = _default
    _default = tracer if tracer is not None else NULL_TRACER
    return previous


def default_tracer() -> Tracer:
    """The currently installed tracer (:data:`NULL_TRACER` unless a
    caller opted in via :func:`install`)."""
    return _default
