"""``repro top``: an ASCII dashboard over one experiment's telemetry.

Renders the paper-figure-shaped view of a run — cluster donated/hosted
memory and idle-host count over virtual time — plus per-host donation
sparklines, cache/disk/network activity, and the tail of the structured
event log.  Everything is built from :mod:`repro.metrics.ascii` blocks,
so it needs no plotting dependency and works in any terminal.

The data behind the screen comes from the shared fleet render-model
(:mod:`repro.obs.fleet.model`): this module and the web fleet view
(:mod:`repro.obs.fleet.server`) are two renderers over one
:class:`~repro.obs.fleet.model.RunView`.  Degenerate runs — zero
donors, missing telemetry columns, an empty event log — render as
``n/a`` rows, never an exception.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.ascii import line_chart, sparkline
from repro.obs.fleet.model import (RunView, build_run_view, pick_run)
from repro.obs.timeseries import RunTelemetry, Telemetry

__all__ = ["pick_run", "render_run", "render_view", "render_dashboard",
           "WIDTH", "MAX_HOST_ROWS"]

MB = 1024 * 1024

#: widest chart/sparkline drawn
WIDTH = 72
#: how many per-host sparkline rows before eliding
MAX_HOST_ROWS = 12


def _fmt_bytes(n: Optional[float]) -> str:
    if n is None:
        return "n/a"
    if n >= 1024 * MB:
        return f"{n / (1024 * MB):.1f}G"
    if n >= MB:
        return f"{n / MB:.1f}M"
    if n >= 1024:
        return f"{n / 1024:.1f}K"
    return f"{n:.0f}B"


def _spark_row(label: str, values, suffix: str = "") -> str:
    if not values:
        return f"  {label:<18s} n/a {suffix}".rstrip()
    return f"  {label:<18s} {sparkline(values, WIDTH - 22)} {suffix}".rstrip()


def _fmt_ms(seconds: Optional[float]) -> str:
    """Seconds → a fixed-width ms cell, ``n/a`` when never sampled."""
    if seconds is None:
        return "     n/a"
    return f"{seconds * 1e3:8.3f}"


def _slo_rows(view: RunView) -> list[str]:
    """The request-SLI / SLO-status panel (empty without SLO data)."""
    out: list[str] = []
    if view.slo_kinds:
        out.append("request SLIs (latest sample):")
        out.append(f"  {'kind':<14s} {'reqs':>7s} {'p50 ms':>8s} "
                   f"{'p99 ms':>8s} {'p999 ms':>8s}")
        for row in view.slo_kinds:
            reqs = row.get("requests")
            out.append(
                f"  {row['kind']:<14s} "
                f"{'n/a' if reqs is None else format(int(reqs), 'd'):>7s} "
                f"{_fmt_ms(row.get('p50'))} {_fmt_ms(row.get('p99'))} "
                f"{_fmt_ms(row.get('p999'))}")
    if view.slo_specs:
        out.append("SLO status:")
        for row in view.slo_specs:
            compliance = row.get("compliance")
            comp = "n/a" if compliance is None else f"{compliance:8.2%}"
            target = row.get("target")
            tgt = "" if target is None else f" (target {target:.2%})"
            burn = ""
            if row.get("burn_fast") is not None:
                burn = (f"  burn {row['burn_fast']:.2f}/"
                        f"{row.get('burn_slow', 0.0):.2f}")
            out.append(f"  {row['spec']:<22s} {comp}{tgt}{burn}"
                       f"  [{row['status']}]")
    if out:
        out.append("")
    return out


def render_view(view: RunView, events: int = 10) -> str:
    """The dashboard body for one run's render model."""
    out: list[str] = []
    out.append(f"run {view.run_id} · {view.duration_s:.1f}s virtual · "
               f"{view.samples} samples @ {view.interval_s:g}s · "
               f"{view.n_components} components")
    out.append("")
    donated = view.cluster.get("donated_bytes")
    if donated is not None:
        out.append(line_chart(
            [v / MB for v in donated.values], width=WIDTH, height=8,
            title=f"cluster donated memory (MB) — "
                  f"peak {_fmt_bytes(donated.maximum())}",
            ylabel_fmt="{:.0f}"))
        out.append("")
    else:
        out.append("  cluster donated memory: n/a (no donation telemetry)")
    hosted = view.cluster.get("hosted_bytes")
    out.append(_spark_row(
        "hosted bytes", hosted.values if hosted else [],
        f"(peak {_fmt_bytes(hosted.maximum())})" if hosted else ""))
    regions = view.cluster.get("hosted_regions")
    if regions is not None:
        out.append(_spark_row("hosted regions", regions.values,
                              f"(peak {regions.maximum():.0f})"))
    idle = view.cluster.get("idle_hosts")
    if idle is not None:
        out.append(_spark_row(
            "idle hosts", idle.values,
            f"(min {idle.minimum():.0f}, max {idle.maximum():.0f})"))
    if view.rpc_outstanding is not None:
        out.append(_spark_row("rpc outstanding",
                              view.rpc_outstanding.values,
                              f"(peak {view.rpc_outstanding.maximum():.0f})"))
    out.append("")

    host_rows = []
    for host in view.hosts:
        state = host.idle_state or "n/a"
        if host.guest is not None and (host.guest_peak or 0) > 0:
            host_rows.append(_spark_row(
                host.name, host.guest.values,
                f"(peak {_fmt_bytes(host.guest_peak)}, {state})"))
        elif host.idle_state is not None or host.up is not None:
            up = ("up" if host.up else "down") if host.up is not None \
                else "n/a"
            host_rows.append(f"  {host.name:<18s} no donations "
                             f"({state}, {up})")
    if host_rows:
        out.append("per-host donated memory:")
        out.extend(host_rows[:MAX_HOST_ROWS])
        if len(host_rows) > MAX_HOST_ROWS:
            out.append(f"  … {len(host_rows) - MAX_HOST_ROWS} more hosts")
        out.append("")

    if view.activity:
        out.append("cache / disk / network:")
        for row in view.activity:
            if row.unit == "percent":
                out.append(_spark_row(row.label, row.values,
                                      f"(now {row.last:.0f}%)"))
            else:
                out.append(_spark_row(
                    row.label, [v / MB for v in row.values],
                    f"(peak {row.peak / MB:.1f} MB/s)"))
        out.append("")

    out.extend(_slo_rows(view))

    if view.events_total:
        out.append(f"events ({view.events_total} recorded, "
                   f"last {min(events, len(view.events))}):")
        for e in view.events[-events:]:
            extras = " ".join(f"{k}={v}"
                              for k, v in e.get("fields", {}).items())
            host = f" {e['host']}" if e.get("host") else ""
            out.append(f"  [{e['t']:10.3f}] {e['level']:5s} "
                       f"{e['component']}/{e['event']}{host}"
                       + (f" {extras}" if extras else ""))
        out.append("")
    return "\n".join(out).rstrip() + "\n"


def render_run(run: RunTelemetry, eventlog=None, events: int = 10) -> str:
    """The dashboard body for one run (model built on the fly)."""
    return render_view(build_run_view(run, eventlog=eventlog,
                                      events_tail=events), events=events)


def render_dashboard(telemetry: Telemetry, eventlog=None, auditor=None,
                     title: str = "", events: int = 10) -> str:
    """Full ``repro top`` output: header, richest run, audit verdict."""
    out: list[str] = []
    bar = "=" * WIDTH
    out.append(bar)
    out.append(f"repro top — {title or 'telemetry'} "
               f"({len(telemetry.runs())} run(s))")
    out.append(bar)
    run = pick_run(telemetry)
    if run is None:
        out.append("no cluster telemetry recorded "
                   "(no components registered a sampler)")
    else:
        out.append(render_run(run, eventlog=eventlog, events=events))
    if auditor is not None and auditor.enabled:
        out.append(auditor.format_report())
    return "\n".join(out).rstrip() + "\n"
