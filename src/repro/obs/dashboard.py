"""``repro top``: an ASCII dashboard over one experiment's telemetry.

Renders the paper-figure-shaped view of a run — cluster donated/hosted
memory and idle-host count over virtual time — plus per-host donation
sparklines, cache/disk/network activity, and the tail of the structured
event log.  Everything is built from :mod:`repro.metrics.ascii` blocks,
so it needs no plotting dependency and works in any terminal.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.ascii import line_chart, sparkline
from repro.obs.timeseries import GaugeSeries, RunTelemetry, Telemetry

MB = 1024 * 1024

#: widest chart/sparkline drawn
WIDTH = 72
#: how many per-host sparkline rows before eliding
MAX_HOST_ROWS = 12


def _fmt_bytes(n: float) -> str:
    if n >= 1024 * MB:
        return f"{n / (1024 * MB):.1f}G"
    if n >= MB:
        return f"{n / MB:.1f}M"
    if n >= 1024:
        return f"{n / 1024:.1f}K"
    return f"{n:.0f}B"


def _rate_per_s(series: GaugeSeries) -> list[float]:
    """Per-sample rate of change of a monotone counter series."""
    rates = []
    for i in range(1, len(series.times)):
        dt = series.times[i] - series.times[i - 1]
        dv = series.values[i] - series.values[i - 1]
        rates.append(dv / dt if dt > 0 else 0.0)
    return rates or [0.0]


def _spark_row(label: str, values, suffix: str = "") -> str:
    return f"  {label:<18s} {sparkline(values, WIDTH - 22)} {suffix}".rstrip()


def pick_run(telemetry: Telemetry) -> Optional[RunTelemetry]:
    """The most interesting run: most samples, cluster series present.

    Experiments build several platforms (calibration, baselines,
    per-transport); the dashboard shows the richest one rather than all
    of them, and a run where memory was actually donated (a Dodo run)
    always beats a longer baseline run where nothing was.
    """
    best, best_score = None, -1.0
    for run in telemetry.runs():
        donated = run.get("cluster", "cluster", "donated_bytes")
        if donated is None or not len(donated):
            continue
        score = run.samples * 1000.0 + len(run.components)
        if donated.maximum() > 0:
            score += 1e12
        if score > best_score:
            best, best_score = run, score
    return best


def render_run(run: RunTelemetry, eventlog=None, events: int = 10) -> str:
    """The dashboard body for one run."""
    out: list[str] = []
    donated = run.get("cluster", "cluster", "donated_bytes")
    hosted = run.get("cluster", "cluster", "hosted_bytes")
    idle = run.get("cluster", "cluster", "idle_hosts")
    regions = run.get("cluster", "cluster", "hosted_regions")
    out.append(f"run {run.run_id} · {run.duration_s():.1f}s virtual · "
               f"{run.samples} samples @ {run.interval_s:g}s · "
               f"{len(run.components)} components")
    out.append("")
    if donated is not None and len(donated):
        out.append(line_chart(
            [v / MB for v in donated.values], width=WIDTH, height=8,
            title=f"cluster donated memory (MB) — "
                  f"peak {_fmt_bytes(donated.maximum())}",
            ylabel_fmt="{:.0f}"))
        out.append("")
    if hosted is not None and len(hosted):
        out.append(_spark_row(
            "hosted bytes", hosted.values,
            f"(peak {_fmt_bytes(hosted.maximum())})"))
    if regions is not None and len(regions):
        out.append(_spark_row(
            "hosted regions", regions.values,
            f"(peak {regions.maximum():.0f})"))
    if idle is not None and len(idle):
        out.append(_spark_row(
            "idle hosts", idle.values,
            f"(min {idle.minimum():.0f}, max {idle.maximum():.0f})"))
    rpc = run.get("rpc", "rpc", "outstanding")
    if rpc is not None and len(rpc):
        out.append(_spark_row("rpc outstanding", rpc.values,
                              f"(peak {rpc.maximum():.0f})"))
    out.append("")

    host_rows = []
    for name, _obj in run.objects("workstation"):
        guest = run.get("workstation", name, "mem.guest_bytes")
        if guest is not None and len(guest) and guest.maximum() > 0:
            host_rows.append(_spark_row(
                name, guest.values, f"(peak {_fmt_bytes(guest.maximum())})"))
    if host_rows:
        out.append("per-host donated memory:")
        out.extend(host_rows[:MAX_HOST_ROWS])
        if len(host_rows) > MAX_HOST_ROWS:
            out.append(f"  … {len(host_rows) - MAX_HOST_ROWS} more hosts")
        out.append("")

    activity = []
    for name, _obj in run.objects("pagecache"):
        ratio = run.get("pagecache", name, "hit_ratio")
        if ratio is not None and len(ratio):
            activity.append(_spark_row(
                f"{name} hit%", [v * 100 for v in ratio.values],
                f"(now {ratio.last() * 100:.0f}%)"))
    for name, _obj in run.objects("disk"):
        reads = run.get("disk", name, "read.bytes")
        if reads is not None and len(reads) > 1:
            rates = _rate_per_s(reads)
            activity.append(_spark_row(
                f"{name} read", [r / MB for r in rates],
                f"(peak {max(rates) / MB:.1f} MB/s)"))
    for name, _obj in run.objects("network"):
        tx = run.get("network", name, "tx.bytes")
        if tx is not None and len(tx) > 1:
            rates = _rate_per_s(tx)
            activity.append(_spark_row(
                f"{name} tx", [r / MB for r in rates],
                f"(peak {max(rates) / MB:.1f} MB/s)"))
    if activity:
        out.append("cache / disk / network:")
        out.extend(activity)
        out.append("")

    if eventlog is not None and eventlog.enabled:
        tail = [e for e in eventlog.events if e.run == run.run_id]
        if tail:
            out.append(f"events ({len(tail)} recorded, last {events}):")
            for e in tail[-events:]:
                extras = " ".join(f"{k}={v}" for k, v in e.fields.items())
                host = f" {e.host}" if e.host else ""
                out.append(f"  [{e.time:10.3f}] {e.level:5s} "
                           f"{e.component}/{e.event}{host}"
                           + (f" {extras}" if extras else ""))
            out.append("")
    return "\n".join(out).rstrip() + "\n"


def render_dashboard(telemetry: Telemetry, eventlog=None, auditor=None,
                     title: str = "", events: int = 10) -> str:
    """Full ``repro top`` output: header, richest run, audit verdict."""
    out: list[str] = []
    bar = "=" * WIDTH
    out.append(bar)
    out.append(f"repro top — {title or 'telemetry'} "
               f"({len(telemetry.runs())} run(s))")
    out.append(bar)
    run = pick_run(telemetry)
    if run is None:
        out.append("no cluster telemetry recorded "
                   "(no components registered a sampler)")
    else:
        out.append(render_run(run, eventlog=eventlog, events=events))
    if auditor is not None and auditor.enabled:
        out.append(auditor.format_report())
    return "\n".join(out).rstrip() + "\n"
