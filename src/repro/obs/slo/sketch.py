"""Streaming percentile sketch: a deterministic log-bucket histogram.

Tail-latency reporting at thousand-host scale cannot retain every
sample: a 2000-host run produces millions of request latencies, and the
serving workload the ROADMAP plans will produce orders of magnitude
more.  This module provides the classic logarithmic-bucket sketch (the
scheme behind DDSketch / HDR-style histograms): values are hashed into
geometrically-spaced buckets, so any quantile is answered from O(log
range) counters with a *proven relative-error bound* and no sample
retention.

Guarantee
---------
For relative accuracy ``alpha`` (default 1%), let ``gamma = (1 + alpha)
/ (1 - alpha)``.  A positive value ``x`` lands in bucket ``i =
ceil(log(x, gamma))``, whose representative value is the bucket
midpoint ``2 * gamma**i / (gamma + 1)``.  Every value in bucket ``i``
lies in ``(gamma**(i-1), gamma**i]``, and the midpoint is within
``alpha`` *relative* error of every point of that interval — so for any
quantile ``q``, ``quantile(q)`` returns a value ``v`` with::

    |v - x_q| <= alpha * x_q

where ``x_q`` is the exact q-quantile of the inserted values (nearest-
rank definition).  ``tests/obs/slo/test_sketch.py`` property-tests this
bound against exact percentiles with hypothesis.

Determinism: buckets are a plain dict keyed by integer index, all
iteration is over sorted keys, and no wall clock or RNG is involved —
two identical insert sequences produce byte-identical ``to_json()``
documents.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

#: values at or below this threshold land in the dedicated zero bucket
#: (1e-12 s = one picosecond, far below any simulated latency)
ZERO_THRESHOLD = 1e-12


class LatencySketch:
    """A mergeable log-bucket quantile sketch with bound ``alpha``.

    The API mirrors the metrics layer's ``Recorder`` sample channels
    (``add`` / ``count`` / summary accessors) so call sites read the
    same, but only O(log range) bucket counters are kept.
    """

    __slots__ = ("alpha", "_gamma", "_log_gamma", "buckets", "zero",
                 "count", "total", "min", "max")

    def __init__(self, alpha: float = 0.01):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        #: bucket index -> count of values in (gamma**(i-1), gamma**i]
        self.buckets: dict[int, int] = {}
        #: count of values <= ZERO_THRESHOLD
        self.zero = 0
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- recording ---------------------------------------------------------
    def add(self, value: float) -> None:
        """Insert one (non-negative) value."""
        if value < 0.0:
            raise ValueError(f"sketch values must be >= 0, got {value}")
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= ZERO_THRESHOLD:
            self.zero += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        """Insert every value of an iterable."""
        for value in values:
            self.add(value)

    def merge(self, other: "LatencySketch") -> None:
        """Fold another sketch of the *same alpha* into this one."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with different alpha "
                f"({self.alpha} vs {other.alpha})")
        self.count += other.count
        self.total += other.total
        self.zero += other.zero
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max

    # -- queries -----------------------------------------------------------
    def mean(self) -> float:
        """Arithmetic mean of the inserted values (exact, not sketched)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile with relative error <= ``alpha``.

        Uses the nearest-rank definition: the returned bucket is the one
        holding the ``ceil(q * count)``-th smallest value (rank 1 for
        ``q=0``).  Returns None for an empty sketch.  The answer is
        clamped into ``[min, max]`` so degenerate single-bucket sketches
        never report values outside the observed range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero:
            return 0.0
        seen = self.zero
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                gamma = self._gamma
                value = 2.0 * gamma ** index / (gamma + 1.0)
                return min(max(value, self.min), self.max)
        return self.max  # pragma: no cover - float-edge fallback

    def percentiles(self, points: Iterable[float] = (0.50, 0.90, 0.99,
                                                     0.999)) -> dict:
        """``{"p50": ..., "p99": ...}`` for the given quantile points."""
        out = {}
        for q in points:
            label = ("p%g" % (q * 100)).replace(".", "")
            out[label] = self.quantile(q)
        return out

    # -- export ------------------------------------------------------------
    def to_json(self) -> dict:
        """Canonical JSON form (sorted bucket keys, mergeable)."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "zero": self.zero,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(i): self.buckets[i]
                        for i in sorted(self.buckets)},
        }

    @classmethod
    def from_json(cls, doc: dict) -> "LatencySketch":
        """Rebuild a sketch from :meth:`to_json` output."""
        sketch = cls(alpha=doc["alpha"])
        sketch.count = doc["count"]
        sketch.zero = doc["zero"]
        sketch.total = doc["total"]
        sketch.min = doc["min"]
        sketch.max = doc["max"]
        sketch.buckets = {int(i): n for i, n in doc["buckets"].items()}
        return sketch

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LatencySketch n={self.count} alpha={self.alpha} "
                f"buckets={len(self.buckets)}>")
