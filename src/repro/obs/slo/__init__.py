"""Request-level SLIs, streaming tail-latency sketches, SLO alerting.

The measurement substrate for the ROADMAP's serving workload, built on
the existing observability stack:

* :mod:`repro.obs.slo.sketch` — deterministic log-bucket percentile
  sketches with a proven relative-error bound (no sample retention);
* :mod:`repro.obs.slo.sli` — per-request records with outcome classes
  and critical-path stage extraction, fed from tracer span ends;
* :mod:`repro.obs.slo.engine` — declarative :class:`SLOSpec` objectives
  evaluated at telemetry sample points with multi-window burn-rate
  alerts emitted as ``slo/*`` event-log records;
* :mod:`repro.obs.slo.report` — the ``repro slo`` report document and
  its tables.

Wire-up (the CLI's ``repro slo`` does all of this)::

    tracer = Tracer()
    sli = SliCollector()
    attach_sli(tracer, sli)          # span ends feed request records
    engine = SloEngine(sli=sli, eventlog=eventlog)
    sli.engine = engine              # records feed SLO counters
    telemetry.slo = engine           # sampler evaluates + records series

Everything is byte-identical deterministic, reads simulated state only
(zero perturbation even when enabled), and costs nothing when disabled.
See docs/OBSERVABILITY.md.
"""

from repro.obs.slo.engine import (DEFAULT_SPECS, SERVING_SPECS, SloEngine,
                                  SLOSpec)
from repro.obs.slo.report import build_slo_report, format_slo_report
from repro.obs.slo.sketch import LatencySketch
from repro.obs.slo.sli import (OUTCOMES, STAGE_ORDER, KindStats,
                               RequestRecord, SliCollector, attach_sli,
                               request_kind, stage_of)

__all__ = [
    "DEFAULT_SPECS", "KindStats", "LatencySketch", "OUTCOMES",
    "RequestRecord", "SERVING_SPECS", "STAGE_ORDER", "SLOSpec",
    "SliCollector", "SloEngine", "attach_sli", "build_slo_report",
    "format_slo_report", "request_kind", "stage_of",
]
