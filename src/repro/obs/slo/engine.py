"""Declarative SLO evaluation with multi-window burn-rate alerting.

An :class:`SLOSpec` states an objective over one request kind — either
*latency* ("99% of ``mread`` requests complete within 20 ms") or
*availability* ("99.9% of ``mread`` requests do not fail") — plus the
two alerting windows of the classic multi-window multi-burn-rate rule:
an alert fires only when the error budget is burning faster than
``burn_threshold`` over *both* the fast window (catches cliffs quickly)
and the slow window (suppresses blips).  Burn rate is the standard
definition: the bad-request fraction over a window divided by the
budget fraction ``1 - target``, so a burn rate of 1.0 spends the budget
exactly at the sustainable pace.

The engine rides the telemetry sampler exactly like the invariant
auditor does: :meth:`SloEngine.sample` is invoked from
``Telemetry.sample_now`` at every sample point, appends the per-spec
compliance / burn-rate / alert series to the run's telemetry (kind
``slo``, so CSV/JSON exports, run directories and the fleet dashboard
pick them up with zero extra plumbing), and emits ``slo/*`` event-log
records on alert transitions and at finalize.  Everything reads
simulated state only — times are virtual, ordering is deterministic,
and a seeded run produces byte-identical ``slo/*`` records every time.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Optional

#: sketch quantiles exported as per-kind telemetry series
_KIND_QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


def _round(x: float) -> float:
    """9-decimal rounding, the repo's canonical-JSON float convention."""
    return round(float(x), 9)


class SLOSpec:
    """One service-level objective over one request kind.

    ``objective`` is ``"latency"`` (a request is *good* when it neither
    failed nor exceeded ``threshold_s``) or ``"availability"`` (good
    when its outcome is not ``failed``).  ``target`` is the required
    good fraction; ``fast_window_s`` / ``slow_window_s`` and
    ``burn_threshold`` parameterize the multi-window alert.
    """

    __slots__ = ("name", "kind", "objective", "target", "threshold_s",
                 "fast_window_s", "slow_window_s", "burn_threshold")

    def __init__(self, name: str, kind: str, objective: str,
                 target: float, threshold_s: Optional[float] = None,
                 fast_window_s: float = 2.0, slow_window_s: float = 10.0,
                 burn_threshold: float = 2.0):
        if objective not in ("latency", "availability"):
            raise ValueError(f"unknown objective {objective!r}, expected "
                             "'latency' or 'availability'")
        if objective == "latency" and threshold_s is None:
            raise ValueError(f"latency SLO {name!r} needs threshold_s")
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {target}")
        if fast_window_s <= 0 or slow_window_s <= 0 \
                or fast_window_s > slow_window_s:
            raise ValueError(
                f"windows must satisfy 0 < fast <= slow, got "
                f"{fast_window_s}/{slow_window_s}")
        if burn_threshold <= 0:
            raise ValueError(f"burn_threshold must be > 0, "
                             f"got {burn_threshold}")
        self.name = name
        self.kind = kind
        self.objective = objective
        self.target = target
        self.threshold_s = threshold_s
        self.fast_window_s = fast_window_s
        self.slow_window_s = slow_window_s
        self.burn_threshold = burn_threshold

    def is_good(self, record) -> bool:
        """Whether one request record meets this objective."""
        if record.outcome == "failed":
            return False
        if self.objective == "latency":
            return record.latency <= self.threshold_s
        return True

    def to_json(self) -> dict:
        """Canonical JSON form of the spec itself."""
        return {
            "name": self.name, "kind": self.kind,
            "objective": self.objective, "target": self.target,
            "threshold_s": self.threshold_s,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "burn_threshold": self.burn_threshold,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SLOSpec {self.name} {self.kind}/{self.objective} "
                f"target={self.target}>")


#: the stock objectives ``repro slo`` / ``repro record`` evaluate:
#: region fetches must be mostly fast and nearly always succeed.  The
#: latency thresholds are sized for the scaled-down CI scenarios (an
#: uncontended remote mread there is a few ms); real deployments pass
#: their own specs.
DEFAULT_SPECS = (
    SLOSpec("mread-latency", kind="mread", objective="latency",
            threshold_s=0.020, target=0.95),
    SLOSpec("mread-availability", kind="mread", objective="availability",
            target=0.999),
    SLOSpec("cread-latency", kind="cread", objective="latency",
            threshold_s=0.020, target=0.90),
)

#: objectives for the request-serving tier (``workloads/serving.py``,
#: request kind ``"serve"``): end-to-end latency under 50 ms for 95% of
#: requests, and almost no admission rejections / hard failures.  Sized,
#: like the stock specs, for the scaled-down CI scenarios.
SERVING_SPECS = (
    SLOSpec("serve-latency", kind="serve", objective="latency",
            threshold_s=0.050, target=0.95),
    SLOSpec("serve-availability", kind="serve", objective="availability",
            target=0.99),
)


class _SpecState:
    """Per-simulator counters and sampled history of one spec."""

    __slots__ = ("good", "total", "times", "goods", "totals",
                 "alerting", "alerts")

    def __init__(self):
        self.good = 0
        self.total = 0
        #: parallel per-sample history for windowed burn rates
        self.times: list[float] = []
        self.goods: list[int] = []
        self.totals: list[int] = []
        self.alerting = False
        self.alerts = 0


class SloEngine:
    """Evaluates SLO specs at telemetry sample points.

    Wire-up: set ``collector.engine = engine`` (the SLI collector feeds
    request outcomes in), attach the engine as ``telemetry.slo`` (the
    sampler calls :meth:`sample` / :meth:`finalize`), and optionally
    hand it the event log for ``slo/*`` records.  Zero-cost when
    nothing is wired: every hook site guards on the attribute being
    None / ``enabled``.
    """

    def __init__(self, specs: Optional[Iterable[SLOSpec]] = None,
                 sli=None, eventlog=None):
        self.enabled = True
        self.specs = list(DEFAULT_SPECS if specs is None else specs)
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO spec names in {names}")
        self.sli = sli
        self.eventlog = eventlog
        self._states: dict[object, list[_SpecState]] = {}

    def _states_for(self, sim) -> list[_SpecState]:
        states = self._states.get(sim)
        if states is None:
            states = self._states[sim] = [_SpecState()
                                          for _ in self.specs]
        return states

    # -- feeding (from the SLI collector) ----------------------------------
    def observe(self, sim, record) -> None:
        """Count one request record against every matching spec."""
        states = self._states_for(sim)
        for spec, state in zip(self.specs, states):
            if spec.kind != record.kind:
                continue
            state.total += 1
            if spec.is_good(record):
                state.good += 1

    # -- sampling (from Telemetry.sample_now) ------------------------------
    def sample(self, run, sim, t: float) -> None:
        """Evaluate every spec now; record series + transition events."""
        sli = self.sli
        if sli is not None and sli.enabled:
            sli_run = sli.run_for(sim, create=False)
            if sli_run is not None:
                for kind in sorted(sli_run.kinds):
                    stats = sli_run.kinds[kind]
                    run.record("slo", kind, "requests", "count", t,
                               stats.count)
                    for gauge, q in _KIND_QUANTILES:
                        value = stats.sketch.quantile(q)
                        if value is not None:
                            run.record("slo", kind, gauge, "s", t, value)
        states = self._states.get(sim)
        if states is None:
            return
        for spec, state in zip(self.specs, states):
            if state.total == 0:
                continue
            state.times.append(t)
            state.goods.append(state.good)
            state.totals.append(state.total)
            compliance = state.good / state.total
            burn_fast = self._burn(spec, state, t, spec.fast_window_s)
            burn_slow = self._burn(spec, state, t, spec.slow_window_s)
            alerting = burn_fast >= spec.burn_threshold \
                and burn_slow >= spec.burn_threshold
            run.record("slo", spec.name, "compliance", "ratio", t,
                       compliance)
            run.record("slo", spec.name, "burn_fast", "x", t, burn_fast)
            run.record("slo", spec.name, "burn_slow", "x", t, burn_slow)
            run.record("slo", spec.name, "alerting", "bool", t,
                       1.0 if alerting else 0.0)
            if alerting != state.alerting:
                state.alerting = alerting
                eventlog = self.eventlog
                if alerting:
                    state.alerts += 1
                if eventlog is not None and eventlog.enabled:
                    event = "slo.alert.start" if alerting \
                        else "slo.alert.stop"
                    level = "warn" if alerting else "info"
                    eventlog.emit(
                        sim, level, "slo", event, spec=spec.name,
                        kind=spec.kind, objective=spec.objective,
                        burn_fast=_round(burn_fast),
                        burn_slow=_round(burn_slow),
                        compliance=_round(compliance))

    @staticmethod
    def _burn(spec: SLOSpec, state: _SpecState, t: float,
              window_s: float) -> float:
        """Error-budget burn rate over ``(t - window_s, t]``.

        The baseline is the last sample at or before the window start
        (counts are cumulative, so the delta is the window's traffic);
        before the first sample the baseline is zero.  No traffic in
        the window means nothing is burning.
        """
        idx = bisect_right(state.times, t - window_s) - 1
        base_good = state.goods[idx] if idx >= 0 else 0
        base_total = state.totals[idx] if idx >= 0 else 0
        d_total = state.total - base_total
        if d_total <= 0:
            return 0.0
        bad_fraction = 1.0 - (state.good - base_good) / d_total
        return bad_fraction / (1.0 - spec.target)

    # -- end of run --------------------------------------------------------
    def finalize(self, run, sim) -> None:
        """Emit one ``slo.summary`` record per evaluated spec."""
        states = self._states.get(sim)
        eventlog = self.eventlog
        if states is None or eventlog is None or not eventlog.enabled:
            return
        for spec, state in zip(self.specs, states):
            if state.total == 0:
                continue
            compliance = state.good / state.total
            met = compliance >= spec.target
            eventlog.emit(
                sim, "info" if met else "warn", "slo", "slo.summary",
                spec=spec.name, kind=spec.kind,
                objective=spec.objective, target=spec.target,
                good=state.good, total=state.total,
                compliance=_round(compliance), met=met,
                alerts=state.alerts)

    # -- reading -----------------------------------------------------------
    def spec_summaries(self) -> list[dict]:
        """Per-spec totals aggregated across simulators (sorted by
        spec declaration order) for reports and ``/api/slo``."""
        out = []
        for i, spec in enumerate(self.specs):
            good = total = alerts = 0
            alerting = False
            for states in self._states.values():
                state = states[i]
                good += state.good
                total += state.total
                alerts += state.alerts
                alerting = alerting or state.alerting
            doc = spec.to_json()
            doc.update({
                "good": good, "total": total,
                "compliance": _round(good / total) if total else None,
                "met": (good / total >= spec.target) if total else None,
                "alerts": alerts, "alerting": alerting,
            })
            out.append(doc)
        return out
