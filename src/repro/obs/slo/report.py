"""The ``repro slo`` report: request SLIs, blame table, SLO verdicts.

Builds one canonical-JSON document from a fed
:class:`~repro.obs.slo.sli.SliCollector` (and optionally a
:class:`~repro.obs.slo.engine.SloEngine`) and renders it as the three
tables the CLI prints: per-kind tail latencies with outcome mix, the
per-stage critical-path blame table (the request-level analogue of the
paper's Tables 3/4), and the per-spec SLO verdicts.  All floats are
rounded before serialization so repeated seeded runs produce
byte-identical documents — the CI slo-smoke step ``cmp``'s two of them.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.report import format_table
from repro.obs.slo.sli import STAGE_ORDER, SliCollector


def _ms(seconds: Optional[float]) -> Optional[float]:
    """Seconds -> milliseconds rounded to 6 decimals (ns precision)."""
    return None if seconds is None else round(seconds * 1e3, 6)


def build_slo_report(sli: SliCollector, engine=None,
                     meta: Optional[dict] = None) -> dict:
    """The canonical SLO report document (deterministic, rounded)."""
    kinds = {}
    for kind, stats in sli.merged_kinds().items():
        sketch = stats.sketch
        kinds[kind] = {
            "count": stats.count,
            "outcomes": dict(sorted(stats.outcomes.items())),
            "latency_ms": {
                "mean": _ms(sketch.mean()),
                "p50": _ms(sketch.quantile(0.50)),
                "p90": _ms(sketch.quantile(0.90)),
                "p99": _ms(sketch.quantile(0.99)),
                "p999": _ms(sketch.quantile(0.999)),
                "max": _ms(sketch.max),
            },
            "dominant": dict(sorted(stats.dominant.items())),
            "blame_ms": {
                stage: _ms(secs / stats.count)
                for stage, secs in sorted(stats.stage_s.items())
            },
        }
    return {
        "meta": meta or {},
        "alpha": sli.alpha,
        "requests": sli.total_requests(),
        "kinds": kinds,
        "specs": engine.spec_summaries() if engine is not None else [],
    }


def _fmt(value: Optional[float], pattern: str = "%.3f") -> str:
    return "n/a" if value is None else pattern % value


def format_slo_report(doc: dict) -> str:
    """Render one report document as the CLI's three tables."""
    out = []
    kinds = doc["kinds"]
    alpha_pct = doc["alpha"] * 100.0
    rows = []
    for kind, k in kinds.items():
        lat = k["latency_ms"]
        top = max(k["dominant"].items(),
                  key=lambda kv: (kv[1], kv[0]))[0] if k["dominant"] \
            else "n/a"
        mix = " ".join(f"{o}:{n}" for o, n in k["outcomes"].items())
        rows.append([kind, str(k["count"]), _fmt(lat["mean"]),
                     _fmt(lat["p50"]), _fmt(lat["p99"]),
                     _fmt(lat["p999"]), top, mix])
    out.append(format_table(
        ["kind", "count", "mean ms", "p50 ms", "p99 ms", "p999 ms",
         "top stage", "outcomes"],
        rows,
        title=(f"request SLIs ({doc['requests']} requests, "
               f"sketch error <= {alpha_pct:g}%)")))
    blame_rows = []
    for kind, k in kinds.items():
        blame = k["blame_ms"]
        blame_rows.append(
            [kind] + [_fmt(blame.get(stage)) for stage in STAGE_ORDER])
    out.append("")
    out.append(format_table(
        ["kind"] + [f"{s} ms" for s in STAGE_ORDER], blame_rows,
        title="critical-path blame (mean ms per request, "
              "Tables 3/4 shape)"))
    specs = doc["specs"]
    if specs:
        spec_rows = []
        for s in specs:
            status = "n/a" if s["met"] is None \
                else ("burning" if s["alerting"]
                      else ("ok" if s["met"] else "violated"))
            spec_rows.append([
                s["name"], s["kind"], s["objective"],
                f"{s['target']:g}",
                _fmt(s["compliance"], "%.6g"),
                str(s["alerts"]), status])
        out.append("")
        out.append(format_table(
            ["slo", "kind", "objective", "target", "compliance",
             "alerts", "status"],
            spec_rows, title="SLO verdicts"))
    return "\n".join(out)
