"""Per-request SLI collection: records, outcomes, critical paths.

The tracer (:mod:`repro.obs.tracer`) already captures every region
fetch, RPC and bulk transfer as a span tree; this module turns each of
those spans into a *request record* the moment it ends: virtual-time
latency, an outcome class (``local`` / ``remote-imd`` / ``disk-fallback``
/ ``retried`` / ``failed``), and a **critical-path decomposition** — the
same elementary-interval sweep as :mod:`repro.obs.breakdown`, run per
request over the span's causal descendants and mapped to *stages*
(client code, manager, rpc wait, net transit, imd service, disk) so the
per-stage blame table has the shape of the paper's Tables 3/4 at
request granularity.

Feeding happens through the tracer's ``sink`` hook: a collector
attached via :func:`attach_sli` is notified on every span end.  The
collector only *reads* spans — it never touches simulated state, so a
run with SLI collection enabled produces bit-identical virtual times
(enforced by ``tests/obs/slo/test_nonperturbation.py``).  Latencies go
into per-kind :class:`~repro.obs.slo.sketch.LatencySketch` instances,
so tail percentiles stay cheap at thousand-host scale; full request
records (with per-stage segments for the Perfetto critical-path track)
are kept only when ``keep_records`` is on, which costs no more than the
tracer's own span retention.

Fast paths and packet paths attribute identically by construction: the
flow-level fast paths (bulk, dgram, disk batch) complete the *same
spans* at the same virtual times as their packet/process equivalents,
so the sweep sees the same windows either way — a property pinned by
``tests/obs/slo/test_fastpath_attribution.py``.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.slo.sketch import LatencySketch

#: tracer component -> request stage (anything unknown is client code)
STAGE_OF = {
    "lib": "client",
    "regionlib": "client",
    "kernel": "client",
    "rpc": "rpc",
    "net": "net",
    "imd": "imd",
    "rmd": "imd",
    "manager": "manager",
    "cmd": "manager",
    "disk": "disk",
    "fs": "disk",
    "pagecache": "disk",
}

#: presentation (and tie-break) order of the stages
STAGE_ORDER = ("client", "manager", "rpc", "net", "imd", "disk")

#: outcome classes, in classification-precedence order
OUTCOMES = ("failed", "retried", "disk-fallback", "remote-imd", "local")

#: library-API span names that are request roots
_LIB_REQUESTS = frozenset(
    ("mopen", "mlookup", "mread", "mwrite", "mpush", "msync", "mclose"))
#: region-cache span names that are request roots
_REGIONLIB_REQUESTS = frozenset(("cread", "cwrite"))
#: bulk-transfer span names that are request roots
_BULK_REQUESTS = frozenset(("bulk.send", "bulk.recv"))


def stage_of(component: str) -> str:
    """Map a tracer component name to its request stage."""
    return STAGE_OF.get(component, "client")


def request_kind(span) -> Optional[str]:
    """The request kind of a span, or None when it is not a request.

    Every library API call, region-cache call, client-side RPC and bulk
    transfer is its own request (so nested requests — the ``rpc.read``
    inside an ``mread`` — each get a record under their own kind).
    """
    component = span.component
    if component == "lib":
        return span.name if span.name in _LIB_REQUESTS else None
    if component == "regionlib":
        return span.name if span.name in _REGIONLIB_REQUESTS else None
    if component == "rpc":
        if span.name.startswith("rpc.") \
                and not span.name.startswith("rpc.retry"):
            return span.name
        return None
    if component == "net":
        return span.name if span.name in _BULK_REQUESTS else None
    return None


class RequestRecord:
    """One completed request: latency, outcome, critical path."""

    __slots__ = ("kind", "span_id", "track", "start", "end", "latency",
                 "outcome", "dominant", "stages", "segments")

    def __init__(self, kind: str, span_id: int, track: int, start: float,
                 end: float, outcome: str, dominant: str,
                 stages: dict, segments: list):
        self.kind = kind
        self.span_id = span_id
        self.track = track
        self.start = start
        self.end = end
        self.latency = end - start
        self.outcome = outcome
        #: the stage with the largest share of the request's window
        self.dominant = dominant
        #: stage -> seconds; sums to ``latency`` exactly
        self.stages = stages
        #: merged ``(t0, t1, stage)`` intervals covering the window
        self.segments = segments

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RequestRecord {self.kind} #{self.span_id} "
                f"{self.latency * 1e3:.3f}ms {self.outcome} "
                f"dominant={self.dominant}>")


class KindStats:
    """Streaming aggregates for one request kind (no sample retention
    beyond the sketch)."""

    __slots__ = ("kind", "sketch", "count", "outcomes", "dominant",
                 "stage_s")

    def __init__(self, kind: str, alpha: float):
        self.kind = kind
        self.sketch = LatencySketch(alpha=alpha)
        self.count = 0
        #: outcome class -> request count
        self.outcomes: dict[str, int] = {}
        #: dominant stage -> request count
        self.dominant: dict[str, int] = {}
        #: stage -> total seconds across all requests (the blame table)
        self.stage_s: dict[str, float] = {}

    def observe(self, record: RequestRecord) -> None:
        """Fold one request record into the aggregates."""
        self.count += 1
        self.sketch.add(record.latency)
        self.outcomes[record.outcome] = \
            self.outcomes.get(record.outcome, 0) + 1
        self.dominant[record.dominant] = \
            self.dominant.get(record.dominant, 0) + 1
        for stage, secs in record.stages.items():
            self.stage_s[stage] = self.stage_s.get(stage, 0.0) + secs

    def merge(self, other: "KindStats") -> None:
        """Fold another kind's aggregates (same kind, e.g. another
        simulator's run) into this one."""
        self.count += other.count
        self.sketch.merge(other.sketch)
        for d_mine, d_other in ((self.outcomes, other.outcomes),
                                (self.dominant, other.dominant)):
            for key, n in d_other.items():
                d_mine[key] = d_mine.get(key, 0) + n
        for stage, secs in other.stage_s.items():
            self.stage_s[stage] = self.stage_s.get(stage, 0.0) + secs


class RunSli:
    """Per-simulator SLI state: the ended-span index and aggregates."""

    __slots__ = ("run_id", "ended", "children", "kinds", "records",
                 "requests")

    def __init__(self, run_id: int):
        self.run_id = run_id
        #: ended spans by id, pruned once their request tree completes
        self.ended: dict[int, object] = {}
        #: parent span id -> child span ids (same pruning)
        self.children: dict[int, list[int]] = {}
        #: request kind -> streaming aggregates
        self.kinds: dict[str, KindStats] = {}
        #: full records in completion order (``keep_records`` only)
        self.records: list[RequestRecord] = []
        self.requests = 0


def _sweep(root, inner: list, root_stage: str):
    """Attribute the root window to stages over elementary intervals.

    Same attribution rule as :func:`repro.obs.breakdown._window_layers`
    (innermost active causal descendant wins; uncovered time belongs to
    the root), but also returns the merged per-stage *segments* so the
    critical path can be rendered as a contiguous track.
    """
    t0, t1 = root.start, root.end
    bounds = {t0, t1}
    for s in inner:
        bounds.add(min(max(s.start, t0), t1))
        bounds.add(min(max(s.end, t0), t1))
    cuts = sorted(bounds)
    stages: dict[str, float] = {}
    segments: list[tuple[float, float, str]] = []
    for lo, hi in zip(cuts, cuts[1:]):
        if hi <= lo:
            continue
        covering = [s for s in inner if s.start <= lo and s.end >= hi]
        if covering:
            pick = max(covering, key=lambda s: (s.start, s.start - s.end))
            stage = stage_of(pick.component)
        else:
            stage = root_stage
        stages[stage] = stages.get(stage, 0.0) + (hi - lo)
        if segments and segments[-1][2] == stage \
                and segments[-1][1] == lo:
            segments[-1] = (segments[-1][0], hi, stage)
        else:
            segments.append((lo, hi, stage))
    return stages, segments


def _stage_rank(stage: str) -> int:
    try:
        return STAGE_ORDER.index(stage)
    except ValueError:  # pragma: no cover - unknown stage fallback
        return len(STAGE_ORDER)


class SliCollector:
    """Builds request records from span ends (the tracer's ``sink``).

    Create one, attach it with :func:`attach_sli`, run the experiment,
    then read ``merged_kinds()`` / ``iter_records()`` or hand it to
    :func:`repro.obs.slo.report.build_slo_report`.  ``alpha`` is the
    relative-error bound of the latency sketches; ``keep_records=False``
    drops per-request records (keeping only the streaming aggregates)
    for memory-bound large-scale runs.
    """

    def __init__(self, alpha: float = 0.01, keep_records: bool = True):
        self.enabled = True
        self.alpha = alpha
        self.keep_records = keep_records
        #: an optional SloEngine notified of every record
        self.engine = None
        self._runs: dict[object, RunSli] = {}

    # -- feeding -----------------------------------------------------------
    def run_for(self, sim, create: bool = True) -> Optional[RunSli]:
        """This simulator's SLI state (1-based ids in first-seen order)."""
        run = self._runs.get(sim)
        if run is None and create:
            run = self._runs[sim] = RunSli(run_id=len(self._runs) + 1)
        return run

    def on_span_end(self, sim, span) -> None:
        """Tracer sink: called once for every span that ends."""
        if not self.enabled or span.end is None:
            return
        run = self.run_for(sim)
        lasting = span.end > span.start
        if lasting:
            # zero-duration spans (instants) cannot cover any interval
            run.ended[span.span_id] = span
            if span.parent_id:
                run.children.setdefault(span.parent_id,
                                        []).append(span.span_id)
        kind = request_kind(span)
        if kind is not None:
            self._record(sim, run, span, kind)
        if lasting and not span.parent_id:
            # a parentless span completed: its causal tree is done (all
            # nested requests were recorded at their own ends), so the
            # index entries can be dropped — memory stays bounded by the
            # deepest in-flight request tree, not the whole run
            self._prune(run, span.span_id)

    def _record(self, sim, run: RunSli, span, kind: str) -> None:
        inner = []
        frontier = [span.span_id]
        while frontier:
            pid = frontier.pop()
            for child_id in run.children.get(pid, ()):
                frontier.append(child_id)
                child = run.ended.get(child_id)
                if child is not None and child.end > span.start \
                        and child.start < span.end:
                    inner.append(child)
        root_stage = stage_of(span.component)
        stages, segments = _sweep(span, inner, root_stage)
        if not stages:  # zero-duration request (e.g. an idle msync)
            stages = {root_stage: 0.0}
            segments = []
        outcome = self._classify(span, inner, stages)
        dominant = max(stages.items(),
                       key=lambda kv: (kv[1], -_stage_rank(kv[0])))[0]
        record = RequestRecord(kind, span.span_id, span.track,
                               span.start, span.end, outcome, dominant,
                               stages, segments)
        run.requests += 1
        stats = run.kinds.get(kind)
        if stats is None:
            stats = run.kinds[kind] = KindStats(kind, self.alpha)
        stats.observe(record)
        if self.keep_records:
            run.records.append(record)
        engine = self.engine
        if engine is not None and engine.enabled:
            engine.observe(sim, record)

    @staticmethod
    def _classify(span, inner: list, stages: dict) -> str:
        """Outcome class, by fixed precedence (:data:`OUTCOMES`)."""
        tags = span.tags or {}
        if tags.get("err") or tags.get("error") or tags.get("timeout"):
            return "failed"
        if tags.get("attempts", 1) > 1:
            return "retried"
        for s in inner:
            if s.component == "rpc" and s.tags \
                    and s.tags.get("attempts", 1) > 1:
                return "retried"
        if stages.get("disk", 0.0) > 0.0:
            return "disk-fallback"
        if stages.get("rpc", 0.0) > 0.0 or stages.get("net", 0.0) > 0.0 \
                or stages.get("imd", 0.0) > 0.0:
            return "remote-imd"
        return "local"

    def _prune(self, run: RunSli, root_id: int) -> None:
        frontier = [root_id]
        while frontier:
            pid = frontier.pop()
            run.ended.pop(pid, None)
            frontier.extend(run.children.pop(pid, ()))

    # -- reading -----------------------------------------------------------
    def runs(self) -> list[RunSli]:
        """Per-simulator SLI state, first-seen order."""
        return list(self._runs.values())

    def total_requests(self) -> int:
        """Request records across every simulator."""
        return sum(run.requests for run in self._runs.values())

    def merged_kinds(self) -> dict[str, KindStats]:
        """Per-kind aggregates merged across simulators, sorted by
        kind (sketches merge exactly — same alpha everywhere)."""
        merged: dict[str, KindStats] = {}
        for run in self._runs.values():
            for kind, stats in run.kinds.items():
                into = merged.get(kind)
                if into is None:
                    into = merged[kind] = KindStats(kind, self.alpha)
                into.merge(stats)
        return {kind: merged[kind] for kind in sorted(merged)}

    def iter_records(self) -> Iterable[RequestRecord]:
        """All kept request records, per run in completion order."""
        for run in self._runs.values():
            yield from run.records

    def clear(self) -> None:
        """Drop all state (the collector can be reused afterwards)."""
        self._runs.clear()


def attach_sli(tracer, collector: Optional[SliCollector]):
    """Point ``tracer``'s span-end sink at ``collector``.

    Returns the previous sink so callers can restore it (the same
    install/restore discipline as the global engine installers).
    """
    previous = getattr(tracer, "sink", None)
    tracer.sink = collector
    return previous
