"""Structured event log: discrete lifecycle events of the simulated cluster.

Where the tracer records *intervals* and the telemetry engine records
*state*, the event log records *transitions*: a node going idle or being
reclaimed, a region placed / freed / found stale, a NIC going down, the
bulk fast path engaging or falling back.  Events carry a level, a
component, an optional host, and free-form (JSON-serializable) fields;
per-component filtering and a level threshold keep the log focused.

Like the tracer and telemetry engine, it is globally installed
(:func:`install_eventlog`), off by default (:data:`NULL_EVENTLOG`), free
when off (emit sites guard with ``sim.eventlog.enabled``), and strictly
deterministic: an event's time is the virtual clock, its ordering is the
emission order, and the JSONL export is byte-identical across seeded
runs (enforced by ``tests/obs/test_telemetry_determinism.py``).
"""

from __future__ import annotations

import json
from typing import IO, Optional

from repro.obs.files import atomic_write

#: severity order; emit() rejects anything else
LEVELS = {"debug": 10, "info": 20, "warn": 30, "error": 40}


class LogEvent:
    """One recorded transition."""

    __slots__ = ("run", "time", "seq", "level", "component", "host",
                 "event", "fields")

    def __init__(self, run: int, time: float, seq: int, level: str,
                 component: str, host: str, event: str, fields: dict):
        self.run = run
        self.time = time
        self.seq = seq
        self.level = level
        self.component = component
        self.host = host
        self.event = event
        self.fields = fields

    def to_dict(self) -> dict:
        d = {"run": self.run, "t": self.time, "seq": self.seq,
             "level": self.level, "component": self.component,
             "event": self.event}
        if self.host:
            d["host"] = self.host
        if self.fields:
            d["fields"] = self.fields
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LogEvent #{self.seq} t={self.time} {self.level} "
                f"{self.component}/{self.event}>")


class EventLog:
    """Collects :class:`LogEvent` records from one or more simulators.

    ``level`` is the minimum severity recorded; ``components`` (a set of
    component names, or None for all) restricts recording further.
    ``telemetry`` may be a :class:`~repro.obs.timeseries.Telemetry` so
    both subsystems agree on run numbering; without one the log assigns
    its own 1-based ids in first-emission order.
    """

    def __init__(self, level: str = "info",
                 components: Optional[set] = None,
                 telemetry=None):
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}, "
                             f"expected one of {sorted(LEVELS)}")
        self.enabled = True
        self.level = level
        self.threshold = LEVELS[level]
        self.components = set(components) if components is not None else None
        self.telemetry = telemetry
        self.events: list[LogEvent] = []
        self._seq = 0
        self._run_ids: dict[object, int] = {}

    def _run_id(self, sim) -> int:
        if self.telemetry is not None and self.telemetry.enabled:
            return self.telemetry.run_id(sim)
        return self._run_ids.setdefault(sim, len(self._run_ids) + 1)

    # -- recording ---------------------------------------------------------
    def emit(self, sim, level: str, component: str, event: str,
             host: str = "", **fields) -> Optional[LogEvent]:
        """Record one event at the current virtual time.

        Returns the record, or None when filtered out.  Field values must
        be JSON-serializable and derived from simulated state only.
        """
        severity = LEVELS.get(level)
        if severity is None:
            raise ValueError(f"unknown level {level!r}")
        if severity < self.threshold:
            return None
        if self.components is not None and component not in self.components:
            return None
        self._seq += 1
        record = LogEvent(self._run_id(sim), sim.now, self._seq, level,
                          component, host, event, fields)
        self.events.append(record)
        return record

    def debug(self, sim, component, event, host="", **fields):
        return self.emit(sim, "debug", component, event, host, **fields)

    def info(self, sim, component, event, host="", **fields):
        return self.emit(sim, "info", component, event, host, **fields)

    def warn(self, sim, component, event, host="", **fields):
        return self.emit(sim, "warn", component, event, host, **fields)

    def error(self, sim, component, event, host="", **fields):
        return self.emit(sim, "error", component, event, host, **fields)

    # -- inspection --------------------------------------------------------
    def select(self, component: Optional[str] = None,
               event: Optional[str] = None,
               min_level: str = "debug") -> list[LogEvent]:
        threshold = LEVELS[min_level]
        return [e for e in self.events
                if LEVELS[e.level] >= threshold
                and (component is None or e.component == component)
                and (event is None or e.event == event)]

    def query(self, component: Optional[str] = None,
              level: str = "debug",
              since: Optional[float] = None,
              until: Optional[float] = None,
              event: Optional[str] = None,
              host: Optional[str] = None,
              run: Optional[int] = None,
              limit: Optional[int] = None) -> list[LogEvent]:
        """Read API over the recorded events (the dashboard endpoints
        are built on this).

        ``level`` is a minimum severity; ``since``/``until`` bound the
        virtual time (inclusive, half-open on ``until``); ``component``,
        ``event``, ``host`` and ``run`` filter exactly; ``limit`` keeps
        only the *last* N matches (the tail, as an operator would want).
        Events come back in emission order.
        """
        threshold = LEVELS.get(level)
        if threshold is None:
            raise ValueError(f"unknown level {level!r}, "
                             f"expected one of {sorted(LEVELS)}")
        out = [e for e in self.events
               if LEVELS[e.level] >= threshold
               and (component is None or e.component == component)
               and (event is None or e.event == event)
               and (host is None or e.host == host)
               and (run is None or e.run == run)
               and (since is None or e.time >= since)
               and (until is None or e.time < until)]
        if limit is not None and limit >= 0:
            out = out[-limit:] if limit else []
        return out

    def counts(self) -> dict[str, int]:
        """Event counts keyed by ``component/event``, sorted."""
        out: dict[str, int] = {}
        for e in self.events:
            key = f"{e.component}/{e.event}"
            out[key] = out.get(key, 0) + 1
        return dict(sorted(out.items()))

    def clear(self) -> None:
        self.events.clear()
        self._seq = 0
        self._run_ids.clear()

    # -- export ------------------------------------------------------------
    def dump_jsonl(self, fp: IO[str]) -> int:
        for e in self.events:
            json.dump(e.to_dict(), fp, sort_keys=True,
                      separators=(",", ":"))
            fp.write("\n")
        return len(self.events)

    def write_jsonl(self, path: str) -> int:
        """Atomically write one JSON object per line; returns the count."""
        with atomic_write(path) as fp:
            return self.dump_jsonl(fp)

    def format_text(self, last: Optional[int] = None) -> str:
        """Human-readable tail of the log (all events when ``last`` is
        None), one ``[t] LEVEL component/event host k=v`` line each."""
        events = self.events if last is None else self.events[-last:]
        lines = []
        for e in events:
            extras = " ".join(f"{k}={v}" for k, v in e.fields.items())
            host = f" {e.host}" if e.host else ""
            lines.append(f"[{e.time:12.3f}] {e.level.upper():5s} "
                         f"{e.component}/{e.event}{host}"
                         + (f" {extras}" if extras else ""))
        return "\n".join(lines)


class _NullEventLog(EventLog):
    """The shared do-nothing log: ``enabled`` is False, ``emit`` is inert."""

    def __init__(self):
        super().__init__(level="error")
        self.enabled = False

    def emit(self, sim, level, component, event, host="", **fields):  # noqa: ARG002
        return None


#: the default, disabled log every Simulator starts with
NULL_EVENTLOG = _NullEventLog()

_default: EventLog = NULL_EVENTLOG


def install_eventlog(log: Optional[EventLog]) -> EventLog:
    """Set the log handed to every *subsequently created* Simulator.
    Pass None (or :data:`NULL_EVENTLOG`) to disable again.  Returns the
    previously installed log."""
    global _default
    previous = _default
    _default = log if log is not None else NULL_EVENTLOG
    return previous


def default_eventlog() -> EventLog:
    """The currently installed log (:data:`NULL_EVENTLOG` unless a caller
    opted in via :func:`install_eventlog`)."""
    return _default
