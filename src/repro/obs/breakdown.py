"""Fetch-path latency decomposition — the shape of the paper's Tables 3/4.

The paper's core evidence is per-primitive latency accounting: where the
time of one ``dodo_get`` (our ``mread``) or ``dodo_free`` goes across
the runtime library, the network, the daemons and the disk.  This module
reproduces that decomposition from a span trace.

For every root span (each ``mread`` by default) the window ``[start,
end]`` is swept over the elementary intervals induced by the boundaries
of the root's *causal descendants* (children via span parent links,
which cross both process spawns and the RPC wire).  Each interval is
attributed to the *innermost* active descendant — the one that started
last (ties broken toward the shorter span) — and that span's component
is mapped to one of the paper's layers.  Intervals covered by no
descendant belong to the library (the root's own code).  Because every
instant of every window is attributed to exactly one layer, the
per-layer means **sum to the end-to-end mean exactly** (up to float
rounding), which is what makes the table trustworthy: nothing is
double-counted and nothing is lost.  Restricting the sweep to causal
descendants keeps concurrent clients (or several simulations traced
into one tracer) from polluting each other's windows.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.metrics.report import format_table
from repro.obs.tracer import Span

#: component -> paper layer.  Unknown components map to themselves so
#: new instrumentation shows up in the table instead of disappearing.
COMPONENT_LAYER = {
    "lib": "library",
    "regionlib": "library",
    "kernel": "library",
    "rpc": "network",
    "net": "network",
    "manager": "manager",
    "cmd": "manager",
    "imd": "daemon",
    "rmd": "daemon",
    "disk": "disk",
    "fs": "disk",
    "pagecache": "disk",
}

#: presentation order of the known layers
LAYER_ORDER = ["library", "manager", "network", "daemon", "disk"]


def layer_of(component: str) -> str:
    """Map a tracer component name to its latency-breakdown layer."""
    return COMPONENT_LAYER.get(component, component)


def _window_layers(root: Span, inner: list[Span]) -> dict[str, float]:
    """Sweep one root window; returns seconds per layer (sums to the
    root's duration exactly)."""
    t0, t1 = root.start, root.end
    bounds = {t0, t1}
    for s in inner:
        bounds.add(min(max(s.start, t0), t1))
        if s.end is not None:
            bounds.add(min(max(s.end, t0), t1))
    cuts = sorted(bounds)
    acc: dict[str, float] = {}
    for lo, hi in zip(cuts, cuts[1:]):
        if hi <= lo:
            continue
        covering = [s for s in inner
                    if s.start <= lo and s.end is not None and s.end >= hi]
        if covering:
            pick = max(covering, key=lambda s: (s.start, s.start - s.end))
            layer = layer_of(pick.component)
        else:
            layer = layer_of(root.component)
        acc[layer] = acc.get(layer, 0.0) + (hi - lo)
    return acc


def fetch_breakdown(spans: Iterable[Span],
                    root_name: str = "mread") -> dict:
    """Decompose the mean latency of every ``root_name`` span by layer.

    Returns ``{"root": name, "count": n, "mean_s": end-to-end mean,
    "layers": {layer: mean seconds}}``; ``count`` is 0 when the trace
    holds no such spans (the caller should skip the report then).
    """
    finished = [s for s in spans if s.end is not None]
    children: dict[int, list[Span]] = {}
    for s in finished:
        children.setdefault(s.parent_id, []).append(s)
    roots = [s for s in finished if s.name == root_name]
    totals: dict[str, float] = {}
    whole = 0.0
    for root in roots:
        inner: list[Span] = []
        frontier = [root.span_id]
        while frontier:
            pid = frontier.pop()
            for child in children.get(pid, ()):
                frontier.append(child.span_id)
                if child.end > root.start and child.start < root.end:
                    inner.append(child)
        for layer, secs in _window_layers(root, inner).items():
            totals[layer] = totals.get(layer, 0.0) + secs
        whole += root.duration
    n = len(roots)
    return {
        "root": root_name,
        "count": n,
        "mean_s": whole / n if n else 0.0,
        "layers": {k: v / n for k, v in totals.items()} if n else {},
    }


def format_fetch_breakdown(breakdown: dict,
                           title: Optional[str] = None) -> str:
    """Render a breakdown as the paper's per-layer latency table."""
    if title is None:
        title = (f"{breakdown['root']} latency breakdown "
                 f"({breakdown['count']} calls, Tables 3/4 shape)")
    layers = breakdown["layers"]
    order = [l for l in LAYER_ORDER if l in layers] \
        + sorted(set(layers) - set(LAYER_ORDER))
    mean = breakdown["mean_s"]
    rows = []
    for layer in order:
        secs = layers[layer]
        share = 100.0 * secs / mean if mean else 0.0
        rows.append([layer, f"{secs * 1e3:.3f}", f"{share:.1f}%"])
    rows.append(["total", f"{mean * 1e3:.3f}", "100.0%"])
    return format_table(["layer", "mean ms", "share"], rows, title=title)
