"""What-if policy replay: rerun a recorded scenario under changed policy.

``repro record`` runs one of the named scenarios (the same scaled-down
platforms the chaos harness uses) with full observability and writes a
run directory (:mod:`repro.obs.fleet.store`) whose ``meta.json`` embeds
the scenario, seed, policy and canonical workload metrics.  ``repro
whatif`` loads that directory, replays the *same scenario and seed*
under a changed :class:`WhatIfPolicy` — region replacement, manager
placement, recruitment thresholds — and reports a structured
side-by-side delta: fetch latency percentiles, refetches, reclaim
evictions, degraded requests.

Replay with an *unchanged* policy reproduces the recorded metrics
byte-identically (same seed drives the simulator, the fault plan and
the workload), which is both the trust anchor for the deltas and a CI
determinism check.  Everything here is virtual-time arithmetic — no
wall clock, no unseeded randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.obs.fleet.insights import build_insights, emit_insights
from repro.obs.fleet.store import RunDir, load_run_dir, write_run_dir
from repro.sweep.spec import jsonify

MB = 1024 * 1024

#: scenarios ``repro record`` / ``repro whatif`` understand
SCENARIOS = ("fig7", "nondedicated")

#: metric keys the delta report compares (must be numeric leaves)
DELTA_KEYS = ("elapsed_s", "fetch_p50_s", "fetch_p95_s", "fetch_max_s",
              "fetch_mean_s", "refetches", "fetches", "local_reads",
              "remote_reads", "disk_reads", "degraded", "reclaims",
              "recruits", "evictions", "requests", "bytes_read")


@dataclass(frozen=True)
class WhatIfPolicy:
    """The replayable policy surface of one run.

    ``replacement`` is the region-cache policy
    (:data:`repro.core.policies.POLICIES`); ``placement`` the manager's
    candidate choice (:data:`repro.core.manager.PLACEMENTS`);
    ``idle_window_s`` and ``load_threshold`` feed the recruitment
    predicate (non-dedicated scenario only; None keeps the scenario
    default).
    """

    replacement: str = "lru"
    placement: str = "random"
    idle_window_s: Optional[float] = None
    load_threshold: Optional[float] = None

    def to_meta(self) -> dict:
        """JSON form stored in a run directory's ``meta.json``."""
        return {"replacement": self.replacement,
                "placement": self.placement,
                "idle_window_s": self.idle_window_s,
                "load_threshold": self.load_threshold}

    @classmethod
    def from_meta(cls, meta: dict) -> "WhatIfPolicy":
        return cls(replacement=meta.get("replacement", "lru"),
                   placement=meta.get("placement", "random"),
                   idle_window_s=meta.get("idle_window_s"),
                   load_threshold=meta.get("load_threshold"))

    def override(self, **changes) -> "WhatIfPolicy":
        """A copy with the given (non-None) fields replaced."""
        effective = {k: v for k, v in changes.items() if v is not None}
        return replace(self, **effective)


class MeasuringRunner:
    """A fault-tolerant synthetic runner that measures the data path.

    Same degraded-read semantics as the chaos harness's runner (a failed
    ``copen``/``cread`` falls back to the file system), plus per-request
    virtual-time latency and a local/remote/disk classification of every
    read — the raw material of the what-if delta.  A *fetch* is a read
    served from beyond the local region cache; a *refetch* is any fetch
    of a region after its first (the cost reclaim churn imposes on
    guests).
    """

    def __init__(self, platform, params, use_dodo: bool = True,
                 policy: str = "lru"):
        from repro.workloads.app import SyntheticRunner
        self._inner = SyntheticRunner(platform, params, use_dodo=use_dodo,
                                      policy=policy)
        self._sim = platform.sim
        self.degraded = 0
        self.latencies_s: list[float] = []
        self.local_reads = 0
        self.remote_reads = 0
        self.disk_reads = 0
        self.fetches = 0
        self.refetches = 0
        self._fetched: set[int] = set()
        self._inner._read = self._read
        self.run = self._inner.run

    def _classify(self, ridx: int, before: dict) -> None:
        stats = self._inner.cache.stats
        deltas = {k: stats.count(k) - before[k]
                  for k in ("cread.local_hits", "cread.remote_hits",
                            "cread.disk_reads")}
        if deltas["cread.remote_hits"] or deltas["cread.disk_reads"]:
            if deltas["cread.remote_hits"] >= deltas["cread.disk_reads"]:
                self.remote_reads += 1
            else:
                self.disk_reads += 1
            self.fetches += 1
            if ridx in self._fetched:
                self.refetches += 1
            self._fetched.add(ridx)
        else:
            self.local_reads += 1

    def _read(self, offset: int, length: int):
        inner = self._inner
        t0 = self._sim.now
        if not inner.use_dodo:
            yield inner.fs.read(inner.fh, offset, length)
            self.latencies_s.append(self._sim.now - t0)
            self.disk_reads += 1
            return
        ridx = offset // inner.region_bytes
        crd = inner._crds.get(ridx)
        if crd is None:
            crd, err = yield from inner.cache.copen(
                inner.region_bytes, inner.fh.fd, ridx * inner.region_bytes)
            if err != 0:
                self.degraded += 1
                yield inner.fs.read(inner.fh, offset, length)
                self.latencies_s.append(self._sim.now - t0)
                return
            inner._crds[ridx] = crd
        stats = inner.cache.stats
        before = {k: stats.count(k)
                  for k in ("cread.local_hits", "cread.remote_hits",
                            "cread.disk_reads")}
        _, err, _ = yield from inner.cache.cread(
            crd, offset - ridx * inner.region_bytes, length)
        if err != 0:
            self.degraded += 1
            yield inner.fs.read(inner.fh, offset, length)
            self.latencies_s.append(self._sim.now - t0)
            return
        self._classify(ridx, before)
        self.latencies_s.append(self._sim.now - t0)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over a pre-sorted list (pure Python so
    the result is reproducible to the bit across platforms)."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1,
              max(0, int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[idx]


def _round(x: float) -> float:
    return round(float(x), 9)


def collect_metrics(runner: MeasuringRunner, result, eventlog,
                    evictions: int) -> dict:
    """The canonical metrics dict stored in ``meta.json`` and compared
    by the delta report.  All floats rounded to 9 decimals so canonical
    JSON is stable."""
    lat = sorted(runner.latencies_s)
    reclaims = len(eventlog.query(component="rmd",
                                  event="node.reclaimed")) \
        + len(eventlog.query(component="imd", event="imd.killed"))
    recruits = len(eventlog.query(component="rmd",
                                  event="node.recruited")) \
        + len(eventlog.query(component="imd", event="imd.start"))
    return {
        "elapsed_s": _round(result.elapsed_s),
        "iteration_s": [_round(t) for t in result.iteration_s],
        "requests": int(result.requests),
        "bytes_read": int(result.bytes_read),
        "fetch_mean_s": _round(sum(lat) / len(lat)) if lat else 0.0,
        "fetch_p50_s": _round(_percentile(lat, 0.50)),
        "fetch_p95_s": _round(_percentile(lat, 0.95)),
        "fetch_max_s": _round(lat[-1]) if lat else 0.0,
        "local_reads": runner.local_reads,
        "remote_reads": runner.remote_reads,
        "disk_reads": runner.disk_reads,
        "fetches": runner.fetches,
        "refetches": runner.refetches,
        "degraded": runner.degraded,
        "reclaims": reclaims,
        "recruits": recruits,
        "evictions": int(evictions),
    }


def run_scenario(scenario: str, seed: int = 0,
                 policy: Optional[WhatIfPolicy] = None,
                 chaos: bool = False, horizon_s: float = 20.0,
                 interval_s: float = 0.25,
                 eventlog_level: str = "debug",
                 audit: str = "off",
                 telemetry=None, eventlog=None,
                 slo: bool = False) -> dict:
    """Run one recordable scenario with full observability.

    Returns ``{"telemetry", "eventlog", "auditor", "result", "metrics",
    "meta"}``.  The same (scenario, seed, policy, chaos) always produces
    byte-identical metrics and exports.  Pre-created ``telemetry`` /
    ``eventlog`` engines may be passed in so an already-running fleet
    server (``repro serve <scenario>``) can watch the run live while it
    executes; by default fresh engines are created.

    ``slo=True`` additionally traces the run through an SLI collector
    and SLO engine (:mod:`repro.obs.slo`): the telemetry gains
    ``slo``-kind series (per-kind tail percentiles, per-spec compliance
    and burn rates), the event log gains ``slo/*`` records, and the
    returned dict gains ``"sli"``, ``"slo"`` and ``"slo_report"``.
    SLI collection only *reads* spans, so metrics and virtual times are
    identical either way.
    """
    from repro.obs.audit import make_auditor
    from repro.obs.eventlog import EventLog, install_eventlog
    from repro.obs.timeseries import Telemetry, install_telemetry
    from repro.obs.tracer import Tracer, install

    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}, "
                         f"expected one of {SCENARIOS}")
    policy = policy or WhatIfPolicy()
    if telemetry is None:
        telemetry = Telemetry(interval_s=interval_s)
    if eventlog is None:
        eventlog = EventLog(level=eventlog_level, telemetry=telemetry)
    sli = engine = tracer = None
    prev_tracer = None
    if slo:
        from repro.obs.slo import SliCollector, SloEngine, attach_sli
        tracer = Tracer()
        sli = SliCollector()
        attach_sli(tracer, sli)
        engine = SloEngine(sli=sli, eventlog=eventlog)
        sli.engine = engine
        telemetry.slo = engine
        prev_tracer = install(tracer)
    # the auditor rides the nemesis (audit after every injection/heal)
    # and the teardown pass, NOT the periodic sampler: during a fault
    # window directory entries are invalidated lazily (epoch checks), so
    # a mid-fault sample legitimately sees transient inconsistencies
    auditor = make_auditor(audit, eventlog=eventlog)
    prev_t = install_telemetry(telemetry)
    prev_e = install_eventlog(eventlog)
    try:
        runner_fn = _SCENARIOS[scenario]
        out = runner_fn(seed, policy, chaos, horizon_s, auditor)
        telemetry.finalize()
        insights = build_insights(telemetry, eventlog)
        emit_insights(eventlog, out["sim"], insights)
    finally:
        install_telemetry(prev_t)
        install_eventlog(prev_e)
        if slo:
            install(prev_tracer)
    metrics = collect_metrics(out["runner"], out["result"], eventlog,
                              evictions=out["evictions"])
    meta = {"scenario": scenario, "seed": seed, "chaos": bool(chaos),
            "horizon_s": horizon_s, "interval_s": interval_s,
            "policy": policy.to_meta(), "metrics": metrics}
    result = {"telemetry": telemetry, "eventlog": eventlog,
              "auditor": auditor, "result": out["result"],
              "metrics": metrics, "insights": insights,
              "meta": jsonify(meta)}
    if slo:
        from repro.obs.slo import build_slo_report
        result["sli"] = sli
        result["slo"] = engine
        result["slo_report"] = build_slo_report(
            sli, engine, meta={"scenario": scenario, "seed": seed,
                               "chaos": bool(chaos)})
    return result


def _run_fig7(seed, policy: WhatIfPolicy, chaos, horizon_s,
              auditor) -> dict:
    from repro.exp.platform import Platform, PlatformParams
    from repro.faults.generate import random_plan
    from repro.sim import Simulator
    from repro.workloads.synthetic import SyntheticParams

    n_mem = 4
    hosts = ["app", "mgr"] + [f"mem{i:02d}" for i in range(n_mem)]
    plan = None
    if chaos:
        plan = random_plan(seed, hosts, horizon_s=horizon_s,
                           protected=("app", "mgr"), experiment="fig7")
    sim = Simulator(seed=seed)
    params = PlatformParams(
        transport="udp", store_payload=False, n_memory_hosts=n_mem,
        imd_pool_bytes=2 * MB, local_cache_bytes=512 * 1024,
        app_fs_cache_dodo=1 * MB, app_fs_cache_baseline=4 * MB,
        disk_capacity_bytes=256 * MB)
    config = _scenario_config(dict(
        transport="udp", store_payload=False, dedicated=True,
        max_pool_bytes=2 * MB, placement=policy.placement))
    platform = Platform(sim, params, dodo=True, config=config,
                        faults=plan, nemesis_auditor=auditor)
    runner = MeasuringRunner(platform, SyntheticParams(
        pattern="hotcold", dataset_bytes=2 * MB, req_size=8192,
        num_iter=3, compute_s=0.02), policy=policy.replacement)
    result = sim.run(until=runner.run())
    if plan is not None:
        _settle(sim, config, plan)
    evictions = runner._inner.cache.stats.count("evictions")
    if auditor is not None and auditor.enabled:
        platform.audit(auditor, teardown=True)
    return {"runner": runner, "result": result, "evictions": evictions,
            "sim": sim}


def _run_nondedicated(seed, policy: WhatIfPolicy, chaos, horizon_s,
                      auditor) -> dict:
    from repro.cluster.idleness import IdlePolicy
    from repro.core.regionlib import RegionCache
    from repro.core.runtime import DodoRuntime
    from repro.exp.nondedicated import NonDedicatedParams, build_cluster
    from repro.faults.generate import random_plan
    from repro.faults.nemesis import Nemesis
    from repro.sim import Simulator
    from repro.workloads.synthetic import SyntheticParams

    p = NonDedicatedParams(n_desktops=6, idle_window_s=5.0,
                           owner_active_mean_s=30.0, seed=seed)
    idle = IdlePolicy(
        window_s=policy.idle_window_s if policy.idle_window_s is not None
        else p.idle_window_s,
        load_threshold=policy.load_threshold
        if policy.load_threshold is not None else 0.3)
    hosts = ["app", "mgr"] + [f"w{i}" for i in range(p.n_desktops)]
    warmup = idle.window_s + 5.0
    plan = None
    if chaos:
        plan = random_plan(seed, hosts, horizon_s=warmup + horizon_s,
                           start_s=warmup, protected=("app", "mgr"),
                           experiment="nondedicated")
    sim = Simulator(seed=seed)
    config = _scenario_config(dict(
        transport=p.transport, store_payload=False, dedicated=False,
        max_pool_bytes=p.max_pool, idle_policy=idle,
        placement=policy.placement))
    cluster, cfg, cmd, rmds, owners = build_cluster(
        sim, p, dodo=True, config=config)
    nemesis = None
    if plan is not None:
        from repro.faults.chaos import _NonDedicatedTargets
        targets = _NonDedicatedTargets(sim, cluster, cfg, cmd, rmds)
        nemesis = Nemesis(targets, plan, auditor=auditor)
        nemesis.start()
    sim.run(until=warmup)  # let monitors recruit the idle desktops

    class _Plat:
        """Adapter matching what the synthetic runner expects."""

        def __init__(self):
            self.sim = sim
            self.app = cluster["app"]
            self.params = type("P", (), {
                "local_cache_bytes": p.local_cache})()
            self.config = cfg

        def region_cache(self, policy="lru", local_bytes=None,
                         runtime=None):
            rt = runtime or DodoRuntime(sim, self.app, cfg,
                                        cmd_host="mgr")
            return RegionCache(rt, local_bytes or p.local_cache,
                               policy=policy)

    runner = MeasuringRunner(_Plat(), SyntheticParams(
        pattern="hotcold", dataset_bytes=p.dataset_bytes,
        req_size=p.req_size, num_iter=3, compute_s=0.02),
        policy=policy.replacement)
    result = sim.run(until=runner.run())
    if plan is not None:
        _settle(sim, cfg, plan)
    evictions = runner._inner.cache.stats.count("evictions")
    if auditor is not None and auditor.enabled and plan is not None:
        targets.audit(auditor, teardown=True)
    return {"runner": runner, "result": result, "evictions": evictions,
            "sim": sim}


def _scenario_config(base_kwargs: dict):
    """A DodoConfig with the chaos-hardening knobs on (scenarios may be
    recorded with or without faults; the config must not depend on it or
    the no-chaos and chaos runs would not share baselines)."""
    from repro.core.config import DodoConfig
    return DodoConfig(rpc_backoff_s=0.02, rpc_backoff_jitter=0.25,
                      imd_reregister_s=2.0, **base_kwargs)


def _settle(sim, config, plan) -> None:
    from repro.faults.chaos import _plan_end
    grace = 2.0 * max(config.imd_reregister_s, 1.0) + 1.0
    sim.run(until=max(sim.now, _plan_end(plan)) + grace)


_SCENARIOS = {"fig7": _run_fig7, "nondedicated": _run_nondedicated}


# -- record / replay ---------------------------------------------------------

def record_run(out_dir: str, scenario: str, seed: int = 0,
               policy: Optional[WhatIfPolicy] = None,
               chaos: bool = False, horizon_s: float = 20.0,
               interval_s: float = 0.25, audit: str = "off") -> dict:
    """``repro record``: run a scenario and write its run directory.
    Returns the meta dict written.  Recordings carry the SLO layer
    (``slo``-kind telemetry series and ``slo/*`` events) so ``repro
    serve`` can answer ``/api/slo`` over them."""
    run = run_scenario(scenario, seed=seed, policy=policy, chaos=chaos,
                       horizon_s=horizon_s, interval_s=interval_s,
                       audit=audit, slo=True)
    return write_run_dir(out_dir, run["telemetry"], run["eventlog"],
                         meta=run["meta"])


def run_whatif(baseline: "RunDir | str", replacement: Optional[str] = None,
               placement: Optional[str] = None,
               idle_window_s: Optional[float] = None,
               load_threshold: Optional[float] = None) -> dict:
    """Replay a recorded run under a (possibly) changed policy.

    Returns the structured what-if document: baseline and replay policy
    + metrics, per-metric delta, and whether the policy actually
    changed (an unchanged replay must reproduce the baseline metrics
    exactly — asserted by tests and the CI fleet smoke).
    """
    if isinstance(baseline, str):
        baseline = load_run_dir(baseline)
    meta = baseline.meta
    base_policy = WhatIfPolicy.from_meta(meta.get("policy", {}))
    replay_policy = base_policy.override(
        replacement=replacement, placement=placement,
        idle_window_s=idle_window_s, load_threshold=load_threshold)
    replay = run_scenario(
        meta["scenario"], seed=int(meta["seed"]),
        policy=replay_policy, chaos=bool(meta.get("chaos", False)),
        horizon_s=float(meta.get("horizon_s", 20.0)),
        interval_s=float(meta.get("interval_s", 0.25)))
    base_metrics = meta.get("metrics", {})
    delta = {}
    for key in DELTA_KEYS:
        a = base_metrics.get(key)
        b = replay["metrics"].get(key)
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            delta[key] = _round(b - a)
    return jsonify({
        "scenario": meta["scenario"], "seed": meta["seed"],
        "chaos": bool(meta.get("chaos", False)),
        "changed": replay_policy != base_policy,
        "baseline": {"policy": base_policy.to_meta(),
                     "metrics": base_metrics},
        "replay": {"policy": replay_policy.to_meta(),
                   "metrics": replay["metrics"]},
        "delta": delta,
    })


def format_whatif(doc: dict) -> str:
    """Human summary of one what-if document (the CLI prints this)."""
    lines = [f"whatif[{doc['scenario']}] seed={doc['seed']}"
             + (" chaos" if doc.get("chaos") else "")]
    base, rep = doc["baseline"]["policy"], doc["replay"]["policy"]
    changes = [f"{k}: {base[k]!r} -> {rep[k]!r}"
               for k in sorted(base) if base[k] != rep[k]]
    lines.append("  policy: " + ("; ".join(changes) if changes
                                 else "unchanged (identity replay)"))
    delta = doc["delta"]
    bm, rm = doc["baseline"]["metrics"], doc["replay"]["metrics"]
    for key in DELTA_KEYS:
        if key not in delta:
            continue
        d = delta[key]
        marker = "=" if d == 0 else ("+" if d > 0 else "")
        lines.append(f"  {key:<14s} {bm.get(key)!r:>14} -> "
                     f"{rm.get(key)!r:>14}  ({marker}{d:g})")
    if not doc["changed"] and all(v == 0 for v in delta.values()):
        lines.append("  identity replay reproduced the baseline exactly")
    return "\n".join(lines)
