"""The fleet dashboard's HTTP serving layer (stdlib only).

``repro serve`` points this at either a *recorded* run directory
(:mod:`repro.obs.fleet.store`) or a *live* telemetry engine while a
simulation is still appending samples — the endpoints are identical in
both modes because everything routes through the shared render model
(:mod:`repro.obs.fleet.model`).

Endpoints (all JSON responses are canonical — sorted keys, tight
separators, trailing newline — so serving the same recorded run twice
yields byte-identical bytes, the property the determinism tests and the
CI fleet smoke assert):

========================  =============================================
``/``                     the single-page dashboard (HTML)
``/api/meta``             scenario / seed / policy / live flag
``/api/fleet``            every run summarized + the richest in full
``/api/host/<name>``      one workstation's full-resolution view
``/api/events``           eventlog query (component/level/since/until…)
``/api/insights``         donor scores + ranked recommendations
``/api/slo``              request SLIs, SLO verdicts, ``slo/*`` events
``/api/timeseries``       raw series select (kind/name/gauge + window)
========================  =============================================
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, unquote, urlparse

from repro.obs.eventlog import EventLog
from repro.obs.fleet.insights import build_insights
from repro.obs.fleet.model import (build_fleet_view, build_run_view,
                                   build_slo_view, pick_run)
from repro.obs.fleet.page import render_page
from repro.obs.fleet.store import RunDir, load_run_dir
from repro.obs.timeseries import Telemetry
from repro.sweep.spec import canonical_text, jsonify


class FleetSource:
    """What the handler reads: telemetry + eventlog + meta, live or not.

    For a recorded run the objects are rehydrated once and never change;
    for a live run they are the installed engines, still being appended
    to by the simulation thread (appends are atomic enough for a
    read-only dashboard — a snapshot may be one sample stale, never
    torn).
    """

    def __init__(self, telemetry: Telemetry,
                 eventlog: Optional[EventLog] = None,
                 meta: Optional[dict] = None, live: bool = False):
        self.telemetry = telemetry
        self.eventlog = eventlog if eventlog is not None else EventLog()
        self.meta = dict(meta or {})
        self.live = live

    @classmethod
    def from_run_dir(cls, run_dir) -> "FleetSource":
        """A source over a recorded run directory (path or RunDir)."""
        if not isinstance(run_dir, RunDir):
            run_dir = load_run_dir(run_dir)
        return cls(run_dir.telemetry, run_dir.eventlog,
                   meta=run_dir.meta, live=False)

    def meta_doc(self) -> dict:
        doc = dict(self.meta)
        doc["live"] = self.live
        doc["runs"] = len(self.telemetry.runs())
        return doc


class HttpError(Exception):
    """An error response with a status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _float_arg(args: dict, key: str) -> Optional[float]:
    if key not in args:
        return None
    try:
        return float(args[key][0])
    except ValueError:
        raise HttpError(400, f"bad {key!r}: not a number")


def _int_arg(args: dict, key: str) -> Optional[int]:
    if key not in args:
        return None
    try:
        return int(args[key][0])
    except ValueError:
        raise HttpError(400, f"bad {key!r}: not an integer")


def _str_arg(args: dict, key: str) -> Optional[str]:
    return args[key][0] if key in args else None


class FleetHandler(BaseHTTPRequestHandler):
    """Routes ``/`` and ``/api/*`` over the server's FleetSource."""

    server_version = "repro-fleet/1"
    protocol_version = "HTTP/1.1"

    # -- routing -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        path = unquote(parsed.path)
        args = parse_qs(parsed.query)
        try:
            if path in ("/", "/index.html"):
                self._send(200, render_page().encode(),
                           "text/html; charset=utf-8")
                return
            doc = self._route_api(path, args)
            body = (canonical_text(jsonify(doc)) + "\n").encode()
            self._send(200, body, "application/json")
        except HttpError as exc:
            body = (canonical_text({"error": str(exc)}) + "\n").encode()
            self._send(exc.status, body, "application/json")

    def _route_api(self, path: str, args: dict) -> dict:
        source: FleetSource = self.server.source  # type: ignore[attr-defined]
        if path == "/api/meta":
            return source.meta_doc()
        if path == "/api/fleet":
            return build_fleet_view(source.telemetry, source.eventlog)
        if path.startswith("/api/host/"):
            return self._host_doc(source, path[len("/api/host/"):])
        if path == "/api/events":
            return self._events_doc(source, args)
        if path == "/api/insights":
            return build_insights(source.telemetry, source.eventlog)
        if path == "/api/slo":
            return build_slo_view(source.telemetry, source.eventlog)
        if path == "/api/timeseries":
            return self._timeseries_doc(source, args)
        raise HttpError(404, f"no such endpoint: {path}")

    # -- endpoint bodies ---------------------------------------------------
    def _host_doc(self, source: FleetSource, name: str) -> dict:
        run = pick_run(source.telemetry)
        if run is None:
            raise HttpError(404, "no telemetry recorded")
        view = build_run_view(run, eventlog=source.eventlog)
        host = view.host(name)
        if host is None:
            raise HttpError(404, f"no such host: {name}")
        return host.to_json()      # full resolution, no downsampling

    def _events_doc(self, source: FleetSource, args: dict) -> dict:
        events = source.eventlog.query(
            component=_str_arg(args, "component"),
            level=_str_arg(args, "level") or "debug",
            since=_float_arg(args, "since"),
            until=_float_arg(args, "until"),
            event=_str_arg(args, "event"),
            host=_str_arg(args, "host"),
            run=_int_arg(args, "run"),
            limit=_int_arg(args, "limit"))
        return {"total": len(source.eventlog.events),
                "matched": [e.to_dict() for e in events]}

    def _timeseries_doc(self, source: FleetSource, args: dict) -> dict:
        run = pick_run(source.telemetry)
        if run is None:
            return {"series": []}
        since = _float_arg(args, "since")
        until = _float_arg(args, "until")
        max_points = _int_arg(args, "max_points")
        out = []
        for s in run.select(kind=_str_arg(args, "kind"),
                            name=_str_arg(args, "name"),
                            gauge=_str_arg(args, "gauge")):
            times, values = s.window(since, until)
            if max_points is not None and len(times) > max_points:
                clone = type(s)(s.kind, s.name, s.gauge, s.unit)
                clone.times, clone.values = times, values
                times, values = clone.downsampled(max_points)
            out.append({"kind": s.kind, "name": s.name, "gauge": s.gauge,
                        "unit": s.unit, "times": times, "values": values})
        return {"run": run.run_id, "series": out}

    # -- plumbing ----------------------------------------------------------
    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *log_args) -> None:
        """Quiet by default; the CLI prints the URL once instead."""


class FleetServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer carrying its FleetSource."""

    daemon_threads = True

    def __init__(self, source: FleetSource, host: str = "127.0.0.1",
                 port: int = 0):
        super().__init__((host, port), FleetHandler)
        self.source = source

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}/"

    def serve_background(self) -> threading.Thread:
        """serve_forever on a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="fleet-server", daemon=True)
        thread.start()
        return thread


def serve_run_dir(path: str, host: str = "127.0.0.1",
                  port: int = 0) -> FleetServer:
    """A server over one recorded run directory (not yet serving)."""
    return FleetServer(FleetSource.from_run_dir(path), host, port)


def serve_live(telemetry: Telemetry, eventlog: Optional[EventLog] = None,
               meta: Optional[dict] = None, host: str = "127.0.0.1",
               port: int = 0) -> FleetServer:
    """A server over live (still-recording) engines (not yet serving)."""
    return FleetServer(FleetSource(telemetry, eventlog, meta, live=True),
                       host, port)
