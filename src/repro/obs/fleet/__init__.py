"""Fleet observability: the live/recorded dashboard, insights and what-if.

This package is the operator-facing layer over the telemetry stream:

* :mod:`repro.obs.fleet.model` — the shared render model both
  ``repro top`` and the web fleet view draw from;
* :mod:`repro.obs.fleet.store` — run directories (``meta.json`` +
  ``telemetry.json`` + ``events.jsonl``) written by ``repro record``
  and rehydrated byte-identically;
* :mod:`repro.obs.fleet.insights` — donor scoring and ranked
  recruitment/placement/migration recommendations;
* :mod:`repro.obs.fleet.whatif` — policy replay of a recorded run with
  a side-by-side delta report;
* :mod:`repro.obs.fleet.server` — the stdlib ``http.server`` dashboard
  behind ``repro serve``.
"""

from repro.obs.fleet.model import (ActivityRow, HostView, RunView,
                                   SeriesView, build_fleet_view,
                                   build_run_view, pick_run)

__all__ = [
    "ActivityRow", "HostView", "RunView", "SeriesView",
    "build_fleet_view", "build_run_view", "pick_run",
]
