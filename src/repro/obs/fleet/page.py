"""The fleet dashboard's single HTML page (no external dependencies).

One self-contained document: inline CSS + JS, data fetched from the
``/api/*`` endpoints and rendered as inline SVG.  Visual language
follows the repo's dataviz conventions: 2px lines, hairline solid
gridlines, a legend for multi-series charts, a crosshair tooltip on the
time charts, per-host sparklines, and a table twin for every chart so
no value is gated behind hover or color.  The categorical palette
(blue/orange/aqua, dark-mode steps included) is CVD-validated; state
and severity are always carried by text next to the mark, never by
color alone.
"""

from __future__ import annotations

#: categorical slots (light, dark) — validated order, do not cycle
PALETTE = (("#2a78d6", "#3987e5"),   # slot 1: blue
           ("#eb6834", "#d95926"),   # slot 2: orange
           ("#1baf7a", "#199e70"))   # slot 3: aqua

PAGE = r"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro fleet</title>
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 1080px; margin: 0 auto; padding: 20px 24px 48px; }
header { display: flex; align-items: baseline; gap: 12px;
         flex-wrap: wrap; margin-bottom: 16px; }
header h1 { font-size: 18px; font-weight: 600; margin: 0; }
header .sub { color: var(--ink-2); font-size: 13px; }
.cards { display: grid; gap: 16px;
         grid-template-columns: repeat(auto-fit, minmax(320px, 1fr)); }
.card { background: var(--surface-1); border: 1px solid var(--border);
        border-radius: 8px; padding: 14px 16px; min-width: 0; }
.card.wide { grid-column: 1 / -1; }
.card h2 { font-size: 13px; font-weight: 600; margin: 0 0 8px;
           color: var(--ink-2); }
.stats { display: grid; gap: 16px;
         grid-template-columns: repeat(auto-fit, minmax(150px, 1fr));
         margin-bottom: 16px; }
.stat { background: var(--surface-1); border: 1px solid var(--border);
        border-radius: 8px; padding: 12px 16px; }
.stat .label { font-size: 12px; color: var(--ink-2); }
.stat .value { font-size: 26px; font-weight: 600; }
svg { display: block; width: 100%; }
svg text { font: 11px system-ui, sans-serif; fill: var(--ink-3); }
.legend { display: flex; gap: 16px; font-size: 12px;
          color: var(--ink-2); margin: 6px 2px 0; }
.legend .key { display: inline-block; width: 14px; height: 0;
               border-top: 2px solid; vertical-align: middle;
               margin-right: 5px; border-radius: 1px; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: left; padding: 4px 10px 4px 0;
         border-bottom: 1px solid var(--grid); }
th { color: var(--ink-2); font-weight: 500; font-size: 12px; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
td.state { color: var(--ink-2); }
.dot { display: inline-block; width: 8px; height: 8px; border-radius: 50%;
       margin-right: 6px; vertical-align: baseline;
       box-shadow: 0 0 0 2px var(--surface-1); }
.recs li { margin: 4px 0; color: var(--ink-1); }
.recs .kind { font-weight: 600; color: var(--ink-2);
              text-transform: uppercase; font-size: 11px;
              letter-spacing: 0.04em; margin-right: 6px; }
details { margin-top: 8px; }
summary { cursor: pointer; font-size: 12px; color: var(--ink-2); }
#tooltip { position: fixed; pointer-events: none; display: none;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 6px 10px; font-size: 12px;
  box-shadow: 0 2px 8px rgba(0,0,0,0.12); z-index: 10; }
#tooltip .t { color: var(--ink-3); margin-bottom: 2px; }
#tooltip .v { font-weight: 600; }
#tooltip .k { display: inline-block; width: 12px; border-top: 2px solid;
              vertical-align: middle; margin-right: 5px; }
.events td { color: var(--ink-2); font-variant-numeric: tabular-nums; }
.events td.ev { color: var(--ink-1); }
.err { color: var(--ink-2); padding: 24px 0; }
</style>
</head>
<body>
<main>
<header>
  <h1>repro fleet</h1>
  <span class="sub" id="meta-line">loading…</span>
</header>
<div class="stats" id="stats"></div>
<div class="cards" id="cards"></div>
</main>
<div id="tooltip"></div>
<script>
"use strict";
const css = name =>
  getComputedStyle(document.documentElement).getPropertyValue(name).trim();
const SERIES = () => [css('--s1'), css('--s2'), css('--s3')];
const fmtBytes = n => {
  if (n == null) return 'n/a';
  const M = 1048576;
  if (n >= 1024 * M) return (n / (1024 * M)).toFixed(1) + ' GB';
  if (n >= M) return (n / M).toFixed(1) + ' MB';
  if (n >= 1024) return (n / 1024).toFixed(1) + ' KB';
  return n.toFixed(0) + ' B';
};
const fmtNum = n => n == null ? 'n/a'
  : (Number.isInteger(n) ? n.toLocaleString('en-US') : n.toPrecision(3));
const el = (tag, cls, text) => {
  const node = document.createElement(tag);
  if (cls) node.className = cls;
  if (text !== undefined) node.textContent = text;
  return node;
};

// ---- SVG helpers (marks: 2px lines, hairline grid, wash fills) ----
const NS = 'http://www.w3.org/2000/svg';
const svgEl = (tag, attrs) => {
  const node = document.createElementNS(NS, tag);
  for (const [k, v] of Object.entries(attrs || {}))
    node.setAttribute(k, v);
  return node;
};
const niceTicks = (lo, hi, n) => {
  if (hi <= lo) hi = lo + 1;
  const span = hi - lo, step0 = span / Math.max(1, n);
  const mag = Math.pow(10, Math.floor(Math.log10(step0)));
  const step = [1, 2, 5, 10].map(m => m * mag)
    .find(s => span / s <= n) || 10 * mag;
  const ticks = [];
  for (let v = Math.ceil(lo / step) * step; v <= hi + 1e-9; v += step)
    ticks.push(v);
  return ticks;
};

// Multi-series time chart with crosshair tooltip + table twin.
function timeChart(card, seriesList, opts) {
  const W = 480, H = 180, padL = 46, padR = 10, padT = 8, padB = 22;
  const live = seriesList.filter(s => s && s.times.length);
  if (!live.length) {
    card.appendChild(el('div', 'err', 'n/a — series not recorded'));
    return;
  }
  const colors = SERIES();
  const t0 = Math.min(...live.map(s => s.times[0]));
  const t1 = Math.max(...live.map(s => s.times[s.times.length - 1]));
  const v1 = Math.max(...live.map(s => Math.max(...s.values)), 0);
  const sx = t => padL + (t - t0) / Math.max(1e-9, t1 - t0)
    * (W - padL - padR);
  const sy = v => H - padB - v / Math.max(1e-9, v1) * (H - padT - padB);
  const svg = svgEl('svg', {viewBox: `0 0 ${W} ${H}`,
                            role: 'img', 'aria-label': opts.label});
  for (const tick of niceTicks(0, v1, 4)) {
    svg.appendChild(svgEl('line', {x1: padL, x2: W - padR,
      y1: sy(tick), y2: sy(tick), stroke: 'var(--grid)',
      'stroke-width': 1}));
    const label = svgEl('text', {x: padL - 6, y: sy(tick) + 3,
                                 'text-anchor': 'end'});
    label.textContent = opts.fmt(tick);
    svg.appendChild(label);
  }
  svg.appendChild(svgEl('line', {x1: padL, x2: W - padR,
    y1: H - padB, y2: H - padB, stroke: 'var(--axis)',
    'stroke-width': 1}));
  for (const tick of niceTicks(t0, t1, 5)) {
    const label = svgEl('text', {x: sx(tick), y: H - padB + 14,
                                 'text-anchor': 'middle'});
    label.textContent = tick.toFixed(0) + 's';
    svg.appendChild(label);
  }
  live.forEach((s, i) => {
    const color = colors[i % colors.length];
    const pts = s.times.map((t, k) => `${sx(t)},${sy(s.values[k])}`);
    if (opts.wash && i === 0)
      svg.appendChild(svgEl('path', {fill: color, opacity: 0.1,
        d: `M${sx(s.times[0])},${H - padB} L` + pts.join(' L')
           + ` L${sx(s.times[s.times.length - 1])},${H - padB} Z`}));
    svg.appendChild(svgEl('path', {fill: 'none', stroke: color,
      'stroke-width': 2, 'stroke-linejoin': 'round',
      'stroke-linecap': 'round', d: 'M' + pts.join(' L')}));
    const endY = sy(s.values[s.values.length - 1]);
    svg.appendChild(svgEl('circle', {
      cx: sx(s.times[s.times.length - 1]), cy: endY, r: 4,
      fill: color, stroke: 'var(--surface-1)', 'stroke-width': 2}));
  });
  const cross = svgEl('line', {y1: padT, y2: H - padB,
    stroke: 'var(--axis)', 'stroke-width': 1, visibility: 'hidden'});
  svg.appendChild(cross);
  const tip = document.getElementById('tooltip');
  svg.addEventListener('pointermove', ev => {
    const rect = svg.getBoundingClientRect();
    const t = t0 + (ev.clientX - rect.left) / rect.width * W < padL ? t0
      : t0 + ((ev.clientX - rect.left) / rect.width * W - padL)
        / (W - padL - padR) * (t1 - t0);
    const tt = Math.max(t0, Math.min(t1, t));
    cross.setAttribute('x1', sx(tt));
    cross.setAttribute('x2', sx(tt));
    cross.setAttribute('visibility', 'visible');
    tip.replaceChildren();
    const head = el('div', 't', 't = ' + tt.toFixed(1) + 's');
    tip.appendChild(head);
    live.forEach((s, i) => {
      let k = 0;
      while (k + 1 < s.times.length
             && Math.abs(s.times[k + 1] - tt) <= Math.abs(s.times[k] - tt))
        k++;
      const row = el('div');
      const key = el('span', 'k');
      key.style.borderTopColor = colors[i % colors.length];
      row.appendChild(key);
      row.appendChild(el('span', 'v', opts.fmt(s.values[k]) + ' '));
      row.appendChild(document.createTextNode(s.label));
      tip.appendChild(row);
    });
    tip.style.display = 'block';
    tip.style.left = (ev.clientX + 14) + 'px';
    tip.style.top = (ev.clientY + 10) + 'px';
  });
  svg.addEventListener('pointerleave', () => {
    cross.setAttribute('visibility', 'hidden');
    tip.style.display = 'none';
  });
  card.appendChild(svg);
  if (live.length > 1) {
    const legend = el('div', 'legend');
    live.forEach((s, i) => {
      const item = el('span');
      const key = el('span', 'key');
      key.style.borderTopColor = colors[i % colors.length];
      item.appendChild(key);
      item.appendChild(document.createTextNode(s.label));
      legend.appendChild(item);
    });
    card.appendChild(legend);
  }
  const details = el('details');
  details.appendChild(el('summary', null, 'table view'));
  const table = el('table');
  const head = el('tr');
  head.appendChild(el('th', null, 't (s)'));
  live.forEach(s => head.appendChild(el('th', 'num', s.label)));
  table.appendChild(head);
  const stride = Math.max(1, Math.floor(live[0].times.length / 12));
  for (let k = 0; k < live[0].times.length; k += stride) {
    const row = el('tr');
    row.appendChild(el('td', 'num', live[0].times[k].toFixed(1)));
    live.forEach(s => row.appendChild(
      el('td', 'num', opts.fmt(s.values[Math.min(k, s.values.length - 1)]))));
    table.appendChild(row);
  }
  details.appendChild(table);
  card.appendChild(details);
}

function sparkSvg(values, color) {
  const W = 120, H = 26;
  if (!values || values.length < 2) {
    return el('span', null, 'n/a');
  }
  const hi = Math.max(...values, 1e-9);
  const svg = svgEl('svg', {viewBox: `0 0 ${W} ${H}`,
                            style: 'width:120px;height:26px'});
  const pts = values.map((v, i) =>
    `${i / (values.length - 1) * (W - 4) + 2},` +
    `${H - 3 - v / hi * (H - 6)}`);
  svg.appendChild(svgEl('path', {fill: 'none', stroke: color,
    'stroke-width': 2, 'stroke-linejoin': 'round',
    d: 'M' + pts.join(' L')}));
  return svg;
}

function statTile(label, value) {
  const tile = el('div', 'stat');
  tile.appendChild(el('div', 'label', label));
  tile.appendChild(el('div', 'value', value));
  return tile;
}

function hostTable(card, hosts) {
  const table = el('table');
  const head = el('tr');
  for (const [cls, text] of [[null, 'host'], [null, 'state'],
      [null, 'donated (guest bytes)'], ['num', 'peak'],
      ['num', 'pool'], ['num', 'regions'],
      ['num', 'recruits'], ['num', 'reclaims']])
    head.appendChild(el('th', cls, text));
  table.appendChild(head);
  const color = SERIES()[0];
  for (const h of hosts) {
    const row = el('tr');
    const name = el('td');
    const dot = el('span', 'dot');
    dot.style.background = h.up === false ? 'var(--ink-3)' : color;
    name.appendChild(dot);
    name.appendChild(document.createTextNode(h.name));
    row.appendChild(name);
    const state = (h.up === false ? 'down · ' : '')
      + (h.idle_state || 'n/a');
    row.appendChild(el('td', 'state', state));
    const spark = el('td');
    spark.appendChild(sparkSvg(h.guest && h.guest.values, color));
    row.appendChild(spark);
    row.appendChild(el('td', 'num', fmtBytes(h.guest_peak)));
    row.appendChild(el('td', 'num', fmtBytes(h.pool_bytes)));
    row.appendChild(el('td', 'num', fmtNum(h.regions_hosted)));
    row.appendChild(el('td', 'num', fmtNum(h.recruits)));
    row.appendChild(el('td', 'num', fmtNum(h.reclaims)));
    table.appendChild(row);
  }
  card.appendChild(table);
}

function activityCard(card, rows) {
  if (!rows.length) {
    card.appendChild(el('div', 'err', 'no activity recorded'));
    return;
  }
  const table = el('table');
  const color = SERIES()[2];
  for (const a of rows) {
    const row = el('tr');
    row.appendChild(el('td', null, a.label));
    const spark = el('td');
    spark.appendChild(sparkSvg(a.values, color));
    row.appendChild(spark);
    const last = a.unit === 'percent' ? a.last.toFixed(0) + '%'
      : fmtBytes(a.last) + '/s';
    row.appendChild(el('td', 'num', last));
    table.appendChild(row);
  }
  card.appendChild(table);
}

function eventsCard(card, events, total) {
  if (!events.length) {
    card.appendChild(el('div', 'err', 'no events recorded'));
    return;
  }
  card.appendChild(el('div', 'sub',
    total + ' event(s) recorded; latest below'));
  const table = el('table');
  table.className = 'events';
  for (const e of events.slice().reverse()) {
    const row = el('tr');
    row.appendChild(el('td', 'num', e.t.toFixed(2) + 's'));
    row.appendChild(el('td', null, e.level));
    row.appendChild(el('td', 'ev',
      e.component + '/' + e.event + (e.host ? ' @' + e.host : '')));
    row.appendChild(el('td', null, e.fields
      ? Object.entries(e.fields).map(([k, v]) => k + '=' + v).join(' ')
      : ''));
    table.appendChild(row);
  }
  card.appendChild(table);
}

function insightsCard(card, doc) {
  if (!doc.donors.length) {
    card.appendChild(el('div', 'err', 'no donor telemetry'));
    return;
  }
  const table = el('table');
  const head = el('tr');
  for (const [cls, text] of [[null, 'donor'], ['num', 'score'],
      ['num', 'recruited'], ['num', 'stability'],
      ['num', 'reclaims'], ['num', 'regions lost']])
    head.appendChild(el('th', cls, text));
  table.appendChild(head);
  for (const d of doc.donors) {
    const row = el('tr');
    row.appendChild(el('td', null, d.host));
    row.appendChild(el('td', 'num', d.score.toFixed(3)));
    row.appendChild(el('td', 'num',
      (d.frac_recruited * 100).toFixed(0) + '%'));
    row.appendChild(el('td', 'num', d.stability.toFixed(2)));
    row.appendChild(el('td', 'num', String(d.reclaims)));
    row.appendChild(el('td', 'num', String(d.regions_lost)));
    table.appendChild(row);
  }
  card.appendChild(table);
  if (doc.recommendations.length) {
    const list = el('ol', 'recs');
    for (const r of doc.recommendations) {
      const item = el('li');
      item.appendChild(el('span', 'kind', r.kind));
      const target = r.target ? ' → ' + r.target : '';
      item.appendChild(document.createTextNode(
        r.host + target + ': ' + r.reason));
      list.appendChild(item);
    }
    card.appendChild(list);
  }
}

const fmtMs = s => s == null ? 'n/a' : (s * 1e3).toFixed(3);
const fmtPct = r => r == null ? 'n/a' : (r * 100).toFixed(2) + '%';

function sloCard(card, doc) {
  if (!doc.kinds.length && !doc.specs.length) {
    card.appendChild(el('div', 'err',
      'no SLO telemetry (record with repro slo / repro record)'));
    return;
  }
  if (doc.kinds.length) {
    const table = el('table');
    const head = el('tr');
    for (const [cls, text] of [[null, 'request kind'], ['num', 'reqs'],
        ['num', 'p50 ms'], ['num', 'p99 ms'], ['num', 'p999 ms']])
      head.appendChild(el('th', cls, text));
    table.appendChild(head);
    for (const k of doc.kinds) {
      const row = el('tr');
      row.appendChild(el('td', null, k.kind));
      row.appendChild(el('td', 'num', fmtNum(k.requests)));
      row.appendChild(el('td', 'num', fmtMs(k.p50)));
      row.appendChild(el('td', 'num', fmtMs(k.p99)));
      row.appendChild(el('td', 'num', fmtMs(k.p999)));
      table.appendChild(row);
    }
    card.appendChild(table);
  }
  if (doc.specs.length) {
    const table = el('table');
    const head = el('tr');
    for (const [cls, text] of [[null, 'SLO'], ['num', 'compliance'],
        ['num', 'target'], ['num', 'burn fast'], ['num', 'burn slow'],
        [null, 'status']])
      head.appendChild(el('th', cls, text));
    table.appendChild(head);
    for (const s of doc.specs) {
      const row = el('tr');
      row.appendChild(el('td', null, s.spec));
      row.appendChild(el('td', 'num', fmtPct(s.compliance)));
      row.appendChild(el('td', 'num', fmtPct(s.target)));
      row.appendChild(el('td', 'num',
        s.burn_fast == null ? 'n/a' : s.burn_fast.toFixed(2)));
      row.appendChild(el('td', 'num',
        s.burn_slow == null ? 'n/a' : s.burn_slow.toFixed(2)));
      row.appendChild(el('td', 'state', s.status));
      table.appendChild(row);
    }
    card.appendChild(table);
  }
}

function makeCard(title, wide) {
  const card = el('div', wide ? 'card wide' : 'card');
  card.appendChild(el('h2', null, title));
  document.getElementById('cards').appendChild(card);
  return card;
}

async function getJSON(url) {
  const res = await fetch(url);
  if (!res.ok) throw new Error(url + ' -> ' + res.status);
  return res.json();
}

let refreshTimer = null;
async function render() {
  const [meta, fleet, insights, slo] = await Promise.all([
    getJSON('/api/meta'), getJSON('/api/fleet'),
    getJSON('/api/insights'), getJSON('/api/slo')]);
  const sub = meta.scenario
    ? `${meta.scenario} · seed ${meta.seed}`
      + (meta.chaos ? ' · chaos' : '') : 'telemetry';
  document.getElementById('meta-line').textContent =
    sub + (meta.live ? ' · live' : ' · recorded');
  const stats = document.getElementById('stats');
  stats.replaceChildren();
  document.getElementById('cards').replaceChildren();
  const main = fleet.main;
  if (!main) {
    stats.appendChild(statTile('runs', '0'));
    makeCard('fleet', true).appendChild(
      el('div', 'err', 'no cluster telemetry recorded'));
    return;
  }
  const donated = main.cluster.donated_bytes;
  const hosted = main.cluster.hosted_bytes;
  const idle = main.cluster.idle_hosts;
  stats.appendChild(statTile('donated peak',
    fmtBytes(donated ? donated.max : null)));
  stats.appendChild(statTile('hosted peak',
    fmtBytes(hosted ? hosted.max : null)));
  stats.appendChild(statTile('idle hosts now',
    idle ? fmtNum(idle.last) : 'n/a'));
  stats.appendChild(statTile('events', fmtNum(main.events_total)));
  timeChart(makeCard('cluster memory over virtual time', true), [
    donated && {...donated, label: 'donated'},
    hosted && {...hosted, label: 'hosted'},
  ].filter(Boolean), {fmt: fmtBytes, wash: true,
                      label: 'cluster donated and hosted bytes'});
  timeChart(makeCard('idle hosts'), [
    idle && {...idle, label: 'idle hosts'}].filter(Boolean),
    {fmt: v => v.toFixed(0), wash: false, label: 'idle host count'});
  timeChart(makeCard('rpc outstanding'), [
    main.rpc_outstanding
    && {...main.rpc_outstanding, label: 'outstanding'}].filter(Boolean),
    {fmt: v => v.toFixed(0), wash: false, label: 'outstanding RPCs'});
  hostTable(makeCard('workstations', true), main.hosts);
  activityCard(makeCard('cache / disk / network'), main.activity);
  insightsCard(makeCard('donor insights'), insights);
  sloCard(makeCard('request SLIs & SLOs', true), slo);
  eventsCard(makeCard('event log', true), main.events,
             main.events_total);
  if (meta.live && !refreshTimer)
    refreshTimer = setInterval(() => render().catch(() => {}), 2000);
}
render().catch(err => {
  document.getElementById('meta-line').textContent =
    'failed to load: ' + err.message;
});
</script>
</body>
</html>
"""


def render_page() -> str:
    """The complete dashboard document served at ``/``."""
    return PAGE
