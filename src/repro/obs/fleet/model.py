"""The shared fleet render-model: one data model, many renderers.

``repro top`` (ASCII, :mod:`repro.obs.dashboard`) and the web fleet
view (:mod:`repro.obs.fleet.server`) used to duplicate the same
snapshot/format logic; both now consume the views built here.  A view
is plain derived data — per-host idle/donation state, cluster series,
activity rates, the event-log tail — extracted from a
:class:`~repro.obs.timeseries.RunTelemetry` (live or rehydrated from a
run directory) and an optional :class:`~repro.obs.eventlog.EventLog`.

Everything degrades gracefully: a gauge that was never sampled becomes
``None`` (rendered as ``n/a``), never an exception — degenerate runs
(zero donors, missing telemetry columns, empty event logs) are a fact
of life for an operator surface.  ``to_json`` output is canonical
plain data, so serving the same recorded run twice yields
byte-identical documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.timeseries import GaugeSeries, RunTelemetry, Telemetry

MB = 1024 * 1024

#: cluster-aggregate gauges every run view carries (None when missing)
CLUSTER_GAUGES = ("donated_bytes", "hosted_bytes", "hosted_regions",
                  "idle_hosts")

#: per-request-kind SLI gauges recorded by the SLO engine (kind ``slo``)
SLO_KIND_GAUGES = ("requests", "p50", "p99", "p999")
#: per-spec gauges recorded by the SLO engine (kind ``slo``)
SLO_SPEC_GAUGES = ("compliance", "burn_fast", "burn_slow", "alerting")


@dataclass
class SeriesView:
    """One gauge's (times, values) plus identity, JSON-ready."""

    kind: str
    name: str
    gauge: str
    unit: str
    times: list[float]
    values: list[float]

    @classmethod
    def of(cls, series: Optional[GaugeSeries]) -> Optional["SeriesView"]:
        if series is None or not len(series):
            return None
        return cls(series.kind, series.name, series.gauge, series.unit,
                   list(series.times), list(series.values))

    def last(self) -> float:
        return self.values[-1]

    def minimum(self) -> float:
        return min(self.values)

    def maximum(self) -> float:
        return max(self.values)

    def to_json(self, max_points: Optional[int] = None) -> dict:
        times, values = self.times, self.values
        if max_points is not None and len(times) > max_points:
            s = GaugeSeries(self.kind, self.name, self.gauge, self.unit)
            s.times, s.values = times, values
            times, values = s.downsampled(max_points)
        return {"kind": self.kind, "name": self.name, "gauge": self.gauge,
                "unit": self.unit, "times": times, "values": values,
                "last": self.last(), "min": self.minimum(),
                "max": self.maximum()}


@dataclass
class HostView:
    """One workstation's donor-facing state."""

    name: str
    up: Optional[bool] = None
    idle_state: Optional[str] = None
    quiet_s: Optional[float] = None
    guest: Optional[SeriesView] = None          # donated memory in use
    pool_bytes: Optional[float] = None          # imd pool size (last)
    pool_used: Optional[SeriesView] = None
    regions_hosted: Optional[float] = None
    recruits: Optional[int] = None              # eventlog-derived counts
    reclaims: Optional[int] = None

    @property
    def guest_peak(self) -> Optional[float]:
        return self.guest.maximum() if self.guest is not None else None

    def to_json(self, max_points: Optional[int] = None) -> dict:
        return {
            "name": self.name, "up": self.up,
            "idle_state": self.idle_state, "quiet_s": self.quiet_s,
            "guest": None if self.guest is None
            else self.guest.to_json(max_points),
            "guest_peak": self.guest_peak,
            "pool_bytes": self.pool_bytes,
            "pool_used": None if self.pool_used is None
            else self.pool_used.to_json(max_points),
            "regions_hosted": self.regions_hosted,
            "recruits": self.recruits, "reclaims": self.reclaims,
        }


@dataclass
class ActivityRow:
    """One cache/disk/NIC utilization sparkline (already rate-formed)."""

    label: str
    unit: str
    values: list[float]

    @property
    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def to_json(self) -> dict:
        return {"label": self.label, "unit": self.unit,
                "values": self.values, "peak": self.peak,
                "last": self.last}


@dataclass
class RunView:
    """Everything a dashboard needs to draw one run."""

    run_id: int
    interval_s: float
    samples: int
    duration_s: float
    n_components: int
    cluster: dict[str, Optional[SeriesView]] = field(default_factory=dict)
    rpc_outstanding: Optional[SeriesView] = None
    hosts: list[HostView] = field(default_factory=list)
    activity: list[ActivityRow] = field(default_factory=list)
    slo_kinds: list[dict] = field(default_factory=list)  # per-kind SLI rows
    slo_specs: list[dict] = field(default_factory=list)  # per-spec verdicts
    events: list[dict] = field(default_factory=list)   # tail, to_dict form
    events_total: int = 0

    def host(self, name: str) -> Optional[HostView]:
        for h in self.hosts:
            if h.name == name:
                return h
        return None

    def to_json(self, max_points: Optional[int] = None) -> dict:
        return {
            "run": self.run_id, "interval_s": self.interval_s,
            "samples": self.samples, "duration_s": self.duration_s,
            "components": self.n_components,
            "cluster": {g: None if s is None else s.to_json(max_points)
                        for g, s in self.cluster.items()},
            "rpc_outstanding": None if self.rpc_outstanding is None
            else self.rpc_outstanding.to_json(max_points),
            "hosts": [h.to_json(max_points) for h in self.hosts],
            "activity": [a.to_json() for a in self.activity],
            "slo_kinds": self.slo_kinds, "slo_specs": self.slo_specs,
            "events": self.events, "events_total": self.events_total,
        }


def rate_per_s(series) -> list[float]:
    """Per-sample rate of change of a monotone counter series."""
    times = series.times
    values = series.values
    rates = []
    for i in range(1, len(times)):
        dt = times[i] - times[i - 1]
        dv = values[i] - values[i - 1]
        rates.append(dv / dt if dt > 0 else 0.0)
    return rates or [0.0]


def _count_components(run: RunTelemetry) -> int:
    if run.components:
        return len(run.components)
    return len({(k, n) for k, n, _g in run.series})


def _host_names(run: RunTelemetry) -> list[str]:
    """Workstations first (registration order), then any rmd/imd names
    that never registered a workstation probe."""
    names = list(run.names("workstation"))
    for kind in ("rmd", "imd"):
        for name in run.names(kind):
            if name not in names:
                names.append(name)
    return names


def _host_view(run: RunTelemetry, name: str, eventlog=None) -> HostView:
    # deferred: repro.cluster pulls the whole simulation stack, which
    # itself imports repro.obs at startup — a top-level import cycles
    from repro.cluster.idleness import state_name
    view = HostView(name=name)
    up = run.get("workstation", name, "up")
    if up is not None and len(up):
        view.up = bool(up.last())
    view.guest = SeriesView.of(run.get("workstation", name,
                                       "mem.guest_bytes"))
    idle = run.get("rmd", name, "idle_state")
    if idle is not None and len(idle):
        view.idle_state = state_name(idle.last())
    quiet = run.get("rmd", name, "quiet_s")
    if quiet is not None and len(quiet):
        view.quiet_s = quiet.last()
    imd_up = run.get("imd", name, "up")
    if imd_up is not None and len(imd_up):
        if view.idle_state is None:
            # dedicated platform: no rmd, the imd *is* the idle state
            view.idle_state = "recruited" if imd_up.last() else "busy"
        if view.up is None:
            view.up = bool(imd_up.last())
    pool = run.get("imd", name, "pool.bytes")
    if pool is not None and len(pool):
        view.pool_bytes = pool.last()
    view.pool_used = SeriesView.of(run.get("imd", name, "pool.used_bytes"))
    hosted = run.get("imd", name, "regions.hosted")
    if hosted is not None and len(hosted):
        view.regions_hosted = hosted.last()
    if eventlog is not None and eventlog.enabled:
        view.recruits = len(eventlog.query(component="rmd",
                                           event="node.recruited",
                                           host=name, run=run.run_id))
        view.reclaims = len(eventlog.query(component="rmd",
                                           event="node.reclaimed",
                                           host=name, run=run.run_id))
    return view


def _activity_rows(run: RunTelemetry) -> list[ActivityRow]:
    rows: list[ActivityRow] = []
    for name in run.names("pagecache"):
        ratio = run.get("pagecache", name, "hit_ratio")
        if ratio is not None and len(ratio):
            rows.append(ActivityRow(f"{name} hit%", "percent",
                                    [v * 100 for v in ratio.values]))
    for name in run.names("disk"):
        reads = run.get("disk", name, "read.bytes")
        if reads is not None and len(reads) > 1:
            rows.append(ActivityRow(f"{name} read", "bytes/s",
                                    rate_per_s(reads)))
    for name in run.names("network"):
        tx = run.get("network", name, "tx.bytes")
        if tx is not None and len(tx) > 1:
            rows.append(ActivityRow(f"{name} tx", "bytes/s",
                                    rate_per_s(tx)))
    for name in run.names("nic"):
        rx = run.get("nic", name, "rx.bytes")
        if rx is not None and len(rx) > 1:
            rates = rate_per_s(rx)
            if max(rates) > 0:
                rows.append(ActivityRow(f"nic {name} rx", "bytes/s",
                                        rates))
    return rows


def _slo_last(run: RunTelemetry, name: str, gauge: str) -> Optional[float]:
    series = run.get("slo", name, gauge)
    if series is None or not len(series):
        return None
    return series.last()


def slo_status(row: dict) -> str:
    """One word for a spec row: ``n/a`` (no traffic), ``burning``
    (multi-window alert active), ``violated`` (compliance below
    target), or ``ok`` — the same vocabulary the ``repro slo`` report
    uses, so operators see one story everywhere."""
    if row.get("compliance") is None:
        return "n/a"
    if row.get("alerting"):
        return "burning"
    met = row.get("met")
    if met is None and row.get("target") is not None:
        met = row["compliance"] >= row["target"]
    if met is False:
        return "violated"
    return "ok"


def build_slo_summary(run: RunTelemetry, eventlog=None):
    """Split a run's ``slo``-kind series into per-kind SLI rows and
    per-spec verdict rows (plain dicts, latest sample of each gauge).

    Series carrying a ``requests`` gauge are request kinds; series
    carrying a ``compliance`` gauge are SLO specs.  ``slo.summary``
    event-log records (present once a run finalized) enrich spec rows
    with target / good / total / met / alerts; without them those keys
    are ``None`` and the status degrades honestly.  Runs recorded
    before this PR — or with the engine disabled — simply yield two
    empty lists.
    """
    kinds: list[dict] = []
    specs: list[dict] = []
    summaries: dict[str, dict] = {}
    if eventlog is not None and eventlog.enabled:
        for e in eventlog.query(component="slo", event="slo.summary",
                                run=run.run_id):
            summaries[e.fields.get("spec", "")] = e.fields
    # series keys, not run.names(): "slo" is a synthetic series kind
    # with no registered component behind it
    names = {s.name for s in run.select(kind="slo")}
    for name in sorted(names):
        if run.get("slo", name, "requests") is not None:
            row = {"kind": name}
            for gauge in SLO_KIND_GAUGES:
                row[gauge] = _slo_last(run, name, gauge)
            kinds.append(row)
        elif run.get("slo", name, "compliance") is not None:
            row = {"spec": name}
            for gauge in ("compliance", "burn_fast", "burn_slow"):
                row[gauge] = _slo_last(run, name, gauge)
            alerting = _slo_last(run, name, "alerting")
            row["alerting"] = None if alerting is None else bool(alerting)
            fields = summaries.get(name, {})
            for key in ("kind", "objective", "target", "good", "total",
                        "met", "alerts"):
                row[key] = fields.get(key)
            row["status"] = slo_status(row)
            specs.append(row)
    return kinds, specs


def build_run_view(run: RunTelemetry, eventlog=None,
                   events_tail: int = 10) -> RunView:
    """Derive one run's complete render model."""
    view = RunView(run_id=run.run_id, interval_s=run.interval_s,
                   samples=run.samples, duration_s=run.duration_s(),
                   n_components=_count_components(run))
    for gauge in CLUSTER_GAUGES:
        view.cluster[gauge] = SeriesView.of(
            run.get("cluster", "cluster", gauge))
    view.rpc_outstanding = SeriesView.of(run.get("rpc", "rpc",
                                                 "outstanding"))
    view.hosts = [_host_view(run, name, eventlog)
                  for name in _host_names(run)]
    view.activity = _activity_rows(run)
    view.slo_kinds, view.slo_specs = build_slo_summary(run, eventlog)
    if eventlog is not None and eventlog.enabled:
        mine = eventlog.query(run=run.run_id)
        view.events_total = len(mine)
        view.events = [e.to_dict() for e in mine[-events_tail:]]
    return view


def pick_run(telemetry: Telemetry) -> Optional[RunTelemetry]:
    """The most interesting run: most samples, cluster series present.

    Experiments build several platforms (calibration, baselines,
    per-transport); the dashboard shows the richest one rather than all
    of them, and a run where memory was actually donated (a Dodo run)
    always beats a longer baseline run where nothing was.  Runs with no
    donation telemetry at all still qualify (scored on samples alone),
    so degenerate runs render with ``n/a`` columns instead of vanishing.
    """
    best, best_score = None, -1.0
    for run in telemetry.runs():
        score = run.samples * 1000.0 + _count_components(run)
        donated = run.get("cluster", "cluster", "donated_bytes")
        if donated is not None and len(donated) and donated.maximum() > 0:
            score += 1e12
        if score > best_score:
            best, best_score = run, score
    return best


def build_fleet_view(telemetry: Telemetry, eventlog=None,
                     events_tail: int = 10) -> dict:
    """The ``/api/fleet`` document: every run summarized, the richest
    run in full.  Canonical plain data."""
    main = pick_run(telemetry)
    runs = []
    for run in telemetry.runs():
        runs.append({"run": run.run_id, "samples": run.samples,
                     "interval_s": run.interval_s,
                     "duration_s": run.duration_s(),
                     "components": _count_components(run)})
    doc: dict = {"runs": runs, "main": None}
    if main is not None:
        doc["main"] = build_run_view(
            main, eventlog=eventlog, events_tail=events_tail).to_json(
            max_points=240)
    return doc


def build_slo_view(telemetry: Telemetry, eventlog=None,
                   events_tail: int = 20) -> dict:
    """The ``/api/slo`` document: the richest run's per-kind tail
    latencies, per-spec verdicts, and the ``slo/*`` event tail.

    Built from the run's recorded ``slo``-kind telemetry series and
    event-log records, so live runs and rehydrated run directories
    share one code path; a run with no SLO engine attached yields
    empty ``kinds``/``specs`` rather than an error.  Canonical plain
    data (see ``docs/schemas/slo_api.json``).
    """
    run = pick_run(telemetry)
    doc: dict = {"run": None, "kinds": [], "specs": [],
                 "events": [], "events_total": 0}
    if run is not None:
        doc["run"] = run.run_id
        doc["kinds"], doc["specs"] = build_slo_summary(run, eventlog)
    if eventlog is not None and eventlog.enabled:
        mine = eventlog.query(component="slo")
        doc["events_total"] = len(mine)
        doc["events"] = [e.to_dict() for e in mine[-events_tail:]]
    return doc
