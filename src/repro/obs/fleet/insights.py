"""Donor insights: score workstations, recommend recruitment/placement.

The paper's recruitment rule is deliberately simple (idle five minutes →
donate); this module is the operator-facing layer above it, answering
the question the rule cannot: *which* donors are actually worth
trusting.  Each host is scored from the recorded telemetry and event
log on three axes:

* **idleness stability** — fraction of samples spent recruited, damped
  by how often the idle state flapped;
* **reclaim frequency** — how often the owner took the machine back
  (each reclaim evicts every hosted region);
* **refetch cost** — regions the host's churn destroyed (reclaim
  evictions, hard kills, stale directory entries), i.e. the cost it
  imposed on guests who must refetch from disk.

Scores feed deterministic, ranked recommendations (``recruit`` /
``placement`` / ``migrate`` / ``avoid``), emitted as structured
``insights/*`` event-log records and served at ``/api/insights``.  All
arithmetic is over recorded virtual-time data with rounded floats, so
the canonical-JSON document is byte-identical for identical runs — the
property the golden-file tests and the CI smoke diff assert.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.fleet.model import pick_run
from repro.obs.timeseries import RunTelemetry, Telemetry
from repro.sweep.spec import jsonify

#: recommendation kinds, most to least actionable
KINDS = ("recruit", "placement", "migrate", "avoid")

#: a donor at or above this score is considered stable
STABLE_SCORE = 0.5
#: reclaims at or above this count mark a host as churn-prone
CHURN_RECLAIMS = 2


def _round(x: float) -> float:
    return round(float(x), 6)


def _transitions(values: list[float]) -> int:
    return sum(1 for a, b in zip(values, values[1:]) if a != b)


def score_host(run: RunTelemetry, name: str, eventlog=None) -> dict:
    """One host's donor profile; every field is canonical plain data."""
    idle = run.get("rmd", name, "idle_state")
    recruited = run.get("rmd", name, "recruited")
    if recruited is None or not len(recruited):
        # dedicated platform: the imd's up series is the recruited state
        recruited = run.get("imd", name, "up")
    flaps = 0
    if idle is not None and len(idle) > 1:
        flaps = _transitions(idle.values)
    elif recruited is not None and len(recruited) > 1:
        flaps = _transitions(recruited.values)
    samples = len(recruited) if recruited is not None else 0
    frac_recruited = (sum(recruited.values) / samples
                      if recruited is not None and samples else 0.0)
    stability = 1.0 - (flaps / samples if samples else 0.0)

    reclaims = recruits = regions_lost = 0
    if eventlog is not None:
        rid = run.run_id
        reclaims = len(eventlog.query(component="rmd",
                                      event="node.reclaimed",
                                      host=name, run=rid)) \
            + len(eventlog.query(component="imd", event="imd.killed",
                                 host=name, run=rid))
        recruits = len(eventlog.query(component="rmd",
                                      event="node.recruited",
                                      host=name, run=rid)) \
            + len(eventlog.query(component="imd", event="imd.start",
                                 host=name, run=rid))
        for e in eventlog.query(component="imd", host=name, run=rid):
            regions_lost += int(e.fields.get("regions_lost", 0))
            if e.event == "imd.exit":
                regions_lost += int(e.fields.get("regions_left", 0))
        regions_lost += len(eventlog.query(component="manager",
                                           event="region.stale",
                                           host=name, run=rid))

    guest = run.get("workstation", name, "mem.guest_bytes")
    pool = run.get("imd", name, "pool.bytes")
    hosted = run.get("imd", name, "regions.hosted")
    score = frac_recruited * stability / (1.0 + reclaims + regions_lost)
    return {
        "host": name,
        "score": _round(score),
        "frac_recruited": _round(frac_recruited),
        "stability": _round(stability),
        "flaps": flaps,
        "reclaims": reclaims,
        "recruits": recruits,
        "regions_lost": regions_lost,
        "guest_peak_bytes": _round(guest.maximum())
        if guest is not None and len(guest) else 0.0,
        "pool_bytes": _round(pool.last())
        if pool is not None and len(pool) else 0.0,
        "regions_hosted": _round(hosted.last())
        if hosted is not None and len(hosted) else 0.0,
    }


def _donor_names(run: RunTelemetry) -> list[str]:
    names = list(run.names("rmd"))
    for name in run.names("imd"):
        if name not in names:
            names.append(name)
    return names


def build_insights(telemetry: Telemetry, eventlog=None,
                   run: Optional[RunTelemetry] = None) -> dict:
    """The ``/api/insights`` document: ranked donors + recommendations.

    Donors are ranked by (score desc, name) — fully deterministic.
    Recommendation rules, applied in rank order:

    * a host with ``reclaims >= 2`` or ``stability < 0.5`` is flagged
      ``avoid``; if it still hosts regions, a ``migrate`` to the best
      stable donor follows;
    * the stable donors (score >= 0.5, no churn flags) get a
      ``placement`` preference, best first;
    * a host that was quiet at the end of the run but never recruited is
      a ``recruit`` candidate.
    """
    run = run if run is not None else pick_run(telemetry)
    if run is None:
        return {"run": None, "donors": [], "recommendations": []}
    donors = [score_host(run, name, eventlog)
              for name in _donor_names(run)]
    donors.sort(key=lambda d: (-d["score"], d["host"]))

    flaky = [d for d in donors
             if d["reclaims"] >= CHURN_RECLAIMS
             or d["stability"] < STABLE_SCORE]
    flaky_names = {d["host"] for d in flaky}
    stable = [d for d in donors
              if d["host"] not in flaky_names
              and d["score"] >= STABLE_SCORE]
    recs = []
    for d in flaky:
        recs.append({
            "kind": "avoid", "host": d["host"], "score": d["score"],
            "reason": f"{d['reclaims']} reclaim(s), "
                      f"stability {d['stability']:.2f}, "
                      f"{d['regions_lost']} region(s) lost"})
        if d["regions_hosted"] > 0 and stable:
            recs.append({
                "kind": "migrate", "host": d["host"],
                "target": stable[0]["host"], "score": d["score"],
                "reason": f"{d['regions_hosted']:.0f} hosted region(s) "
                          f"at risk; best stable donor is "
                          f"{stable[0]['host']}"})
    for d in stable:
        recs.append({
            "kind": "placement", "host": d["host"], "score": d["score"],
            "reason": f"stable donor: recruited "
                      f"{d['frac_recruited']:.0%} of the run, "
                      f"{d['reclaims']} reclaim(s)"})
    for d in donors:
        if d["host"] in flaky_names or d["recruits"] > 0 \
                or d["frac_recruited"] > 0:
            continue
        idle = run.get("rmd", d["host"], "idle_state")
        if idle is not None and len(idle) and idle.last() == 1.0:
            recs.append({
                "kind": "recruit", "host": d["host"], "score": d["score"],
                "reason": "quiet at end of run but never recruited; "
                          "candidate for a shorter idle window"})
    return jsonify({"run": run.run_id, "donors": donors,
                    "recommendations": recs})


def emit_insights(eventlog, sim, doc: dict) -> int:
    """Append the insights to the structured event log (one
    ``insights/donor.scored`` per donor, one ``insights/recommendation``
    per recommendation) and return how many records were emitted.
    No-op on a disabled log."""
    if eventlog is None or not eventlog.enabled:
        return 0
    emitted = 0
    for d in doc.get("donors", []):
        if eventlog.info(sim, "insights", "donor.scored", host=d["host"],
                         score=d["score"], reclaims=d["reclaims"],
                         stability=d["stability"],
                         regions_lost=d["regions_lost"]) is not None:
            emitted += 1
    for i, r in enumerate(doc.get("recommendations", []), start=1):
        fields = {"rank": i, "kind": r["kind"], "score": r["score"],
                  "reason": r["reason"]}
        if "target" in r:
            fields["target"] = r["target"]
        if eventlog.info(sim, "insights", "recommendation",
                         host=r["host"], **fields) is not None:
            emitted += 1
    return emitted


def format_insights(doc: dict) -> str:
    """Human summary of one insights document (the CLI prints this)."""
    if not doc.get("donors"):
        return "insights: no donor telemetry recorded"
    lines = [f"donor insights (run {doc['run']}):"]
    for d in doc["donors"]:
        lines.append(
            f"  {d['host']:<8s} score {d['score']:.3f}  "
            f"recruited {d['frac_recruited']:.0%}  "
            f"stability {d['stability']:.2f}  "
            f"reclaims {d['reclaims']}  lost {d['regions_lost']}")
    if doc["recommendations"]:
        lines.append("recommendations:")
        for i, r in enumerate(doc["recommendations"], start=1):
            target = f" -> {r['target']}" if "target" in r else ""
            lines.append(f"  {i}. [{r['kind']}] {r['host']}{target}: "
                         f"{r['reason']}")
    else:
        lines.append("recommendations: none (all donors nominal)")
    return "\n".join(lines)
