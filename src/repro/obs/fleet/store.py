"""Run directories: recorded observability, rehydrated byte-identically.

``repro record`` (and any experiment run with ``--fleet-out``) writes a
*run directory* — the unit the fleet dashboard, insights engine and
what-if replayer all consume::

    <dir>/meta.json        scenario, seed, policy, canonical metrics
    <dir>/telemetry.json   Telemetry.to_json() (canonical JSON)
    <dir>/events.jsonl     EventLog JSONL export

Everything is canonical JSON written atomically, so recording the same
seeded scenario twice produces byte-identical directories — the
determinism property the CI fleet smoke diffs for.  :func:`load_run_dir`
rehydrates the telemetry and event log into the same in-memory types the
live path uses; the render model and every ``/api/*`` endpoint work
identically over live and recorded runs.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.obs.eventlog import EventLog, LogEvent
from repro.obs.files import atomic_write
from repro.obs.timeseries import GaugeSeries, RunTelemetry, Telemetry
from repro.sweep.spec import canonical_text, jsonify

#: bumped when the on-disk layout changes incompatibly
FORMAT_VERSION = 1

META_FILE = "meta.json"
TELEMETRY_FILE = "telemetry.json"
EVENTS_FILE = "events.jsonl"


class RunDirError(ValueError):
    """A run directory that is missing, incomplete, or unreadable."""


class RunDir:
    """One loaded run directory: meta + rehydrated telemetry/eventlog."""

    def __init__(self, path: str, meta: dict, telemetry: Telemetry,
                 eventlog: EventLog):
        self.path = path
        self.meta = meta
        self.telemetry = telemetry
        self.eventlog = eventlog

    @property
    def scenario(self) -> str:
        return self.meta.get("scenario", "")

    @property
    def seed(self) -> Optional[int]:
        return self.meta.get("seed")

    @property
    def policy(self) -> dict:
        return self.meta.get("policy", {})

    @property
    def metrics(self) -> dict:
        return self.meta.get("metrics", {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RunDir {self.path!r} scenario={self.scenario!r} "
                f"seed={self.seed!r}>")


def write_run_dir(path: str, telemetry: Telemetry,
                  eventlog: Optional[EventLog] = None,
                  meta: Optional[dict] = None) -> dict:
    """Write one run directory (created if needed); returns the meta
    dict actually written.  All three files are canonical JSON / JSONL
    written atomically."""
    os.makedirs(path, exist_ok=True)
    doc = dict(meta or {})
    doc["format"] = FORMAT_VERSION
    doc = jsonify(doc)
    with atomic_write(os.path.join(path, META_FILE)) as fp:
        fp.write(canonical_text(doc))
        fp.write("\n")
    telemetry.write_json(os.path.join(path, TELEMETRY_FILE),
                         meta={"scenario": doc.get("scenario", ""),
                               "seed": doc.get("seed")})
    log = eventlog if eventlog is not None else EventLog()
    log.write_jsonl(os.path.join(path, EVENTS_FILE))
    return doc


def _rehydrate_telemetry(doc: dict) -> Telemetry:
    """Rebuild a :class:`Telemetry` from its ``to_json`` document.

    Runs are keyed by placeholder objects (no simulators exist any
    more); series come back in recorded order, so the render model's
    name/kind fallbacks see the original registration order.
    """
    telemetry = Telemetry()
    for run_doc in doc.get("runs", []):
        run = RunTelemetry(run_id=int(run_doc["run"]),
                           interval_s=float(run_doc["interval_s"]))
        run.samples = int(run_doc["samples"])
        for s in run_doc.get("series", []):
            series = GaugeSeries(s["kind"], s["name"], s["gauge"],
                                 s["unit"])
            for t, v in zip(s["times"], s["values"]):
                series.record(float(t), float(v))
            run.series[series.key] = series
        telemetry._runs[object()] = run
    return telemetry


def _rehydrate_eventlog(path: str) -> EventLog:
    """Rebuild an :class:`EventLog` from a JSONL export."""
    log = EventLog(level="debug")
    if not os.path.exists(path):
        return log
    with open(path) as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RunDirError(f"bad event line in {path}: {exc}")
            log.events.append(LogEvent(
                run=int(d["run"]), time=float(d["t"]),
                seq=int(d["seq"]), level=d["level"],
                component=d["component"], host=d.get("host", ""),
                event=d["event"], fields=d.get("fields", {})))
    log._seq = log.events[-1].seq if log.events else 0
    return log


def load_run_dir(path: str) -> RunDir:
    """Load a run directory written by :func:`write_run_dir`."""
    meta_path = os.path.join(path, META_FILE)
    telemetry_path = os.path.join(path, TELEMETRY_FILE)
    if not os.path.isdir(path):
        raise RunDirError(f"not a run directory: {path}")
    if not os.path.exists(meta_path):
        raise RunDirError(f"no {META_FILE} in {path} "
                          "(not a recorded run directory?)")
    with open(meta_path) as fp:
        try:
            meta = json.load(fp)
        except json.JSONDecodeError as exc:
            raise RunDirError(f"bad {META_FILE} in {path}: {exc}")
    version = meta.get("format")
    if version != FORMAT_VERSION:
        raise RunDirError(f"run directory format {version!r} in {path}, "
                          f"this build reads {FORMAT_VERSION}")
    if not os.path.exists(telemetry_path):
        raise RunDirError(f"no {TELEMETRY_FILE} in {path}")
    with open(telemetry_path) as fp:
        try:
            telemetry_doc = json.load(fp)
        except json.JSONDecodeError as exc:
            raise RunDirError(f"bad {TELEMETRY_FILE} in {path}: {exc}")
    telemetry = _rehydrate_telemetry(telemetry_doc)
    eventlog = _rehydrate_eventlog(os.path.join(path, EVENTS_FILE))
    return RunDir(path, meta, telemetry, eventlog)
