"""Atomic file writes for every observability output.

Traces, metrics snapshots, time-series CSVs and event logs are consumed
by downstream tooling (CI checks, diffing, plotting).  A run interrupted
mid-write must never leave a truncated JSON/CSV behind that a consumer
half-parses: all writers therefore stream into a temporary file in the
target directory and ``os.replace`` it into place only once the content
is complete — on any error the temporary file is removed and the old
file (if any) survives untouched.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import IO, Iterator


@contextmanager
def atomic_write(path: str) -> Iterator[IO[str]]:
    """Open a text stream that becomes ``path`` only on clean completion.

    Usage::

        with atomic_write("out.json") as fp:
            json.dump(obj, fp)

    The temporary file lives in the same directory as ``path`` so the
    final ``os.replace`` is a same-filesystem rename (atomic on POSIX).
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w") as fp:
            yield fp
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
