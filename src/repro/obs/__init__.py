"""Observability: tracing, telemetry, event log, invariant audit, dashboard.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and workflows.  The
usual entry points:

* :func:`install` / :class:`Tracer` — turn tracing on for subsequently
  created simulators (the CLI's ``--trace-out`` and ``repro trace``).
* :func:`write_chrome_trace` — Perfetto-viewable trace-event JSON.
* :func:`fetch_breakdown` / :func:`format_fetch_breakdown` — per-layer
  latency decomposition of ``mread``/``mwrite`` (the paper's Tables 3/4).
* :func:`snapshot` / :func:`write_snapshot` — diffable per-run metrics.
* :func:`install_telemetry` / :class:`Telemetry` — virtual-time sampling
  of cluster state into typed time series (``--telemetry-out``,
  ``repro top``).
* :func:`install_eventlog` / :class:`EventLog` — structured lifecycle
  events with levels and filtering (``--events-out``).
* :class:`Auditor` — online cross-component invariant checking
  (``--audit warn|raise``).
* :func:`render_dashboard` — the ``repro top`` ASCII view.
* :func:`build_fleet_view` / :func:`build_run_view` — the shared render
  model behind ``repro top`` and the web fleet dashboard (``repro
  serve``); recording, insights and what-if replay live in
  :mod:`repro.obs.fleet` (kept out of this namespace: they import the
  experiment stack).
"""

from repro.obs.audit import AuditError, Auditor, Finding, make_auditor
from repro.obs.breakdown import (COMPONENT_LAYER, LAYER_ORDER,
                                 fetch_breakdown, format_fetch_breakdown,
                                 layer_of)
from repro.obs.dashboard import pick_run, render_dashboard, render_run
from repro.obs.eventlog import NULL_EVENTLOG, EventLog, LogEvent, \
    default_eventlog, install_eventlog
from repro.obs.export import chrome_trace, dump_chrome_trace, \
    write_chrome_trace
from repro.obs.files import atomic_write
from repro.obs.fleet.model import (ActivityRow, HostView, RunView,
                                   SeriesView, build_fleet_view,
                                   build_run_view)
from repro.obs.snapshot import dump_snapshot, group_name, merged_snapshot, \
    recorder_snapshot, snapshot, write_snapshot
from repro.obs.timeseries import NULL_TELEMETRY, GaugeSeries, RunTelemetry, \
    Telemetry, default_telemetry, install_telemetry
from repro.obs.tracer import NULL_TRACER, Span, Tracer, default_tracer, \
    install

__all__ = [
    "ActivityRow",
    "AuditError",
    "Auditor",
    "COMPONENT_LAYER",
    "EventLog",
    "Finding",
    "GaugeSeries",
    "HostView",
    "LAYER_ORDER",
    "LogEvent",
    "NULL_EVENTLOG",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "RunTelemetry",
    "RunView",
    "SeriesView",
    "Span",
    "Telemetry",
    "Tracer",
    "atomic_write",
    "build_fleet_view",
    "build_run_view",
    "chrome_trace",
    "default_eventlog",
    "default_telemetry",
    "default_tracer",
    "dump_chrome_trace",
    "dump_snapshot",
    "fetch_breakdown",
    "format_fetch_breakdown",
    "group_name",
    "install",
    "install_eventlog",
    "install_telemetry",
    "layer_of",
    "make_auditor",
    "merged_snapshot",
    "pick_run",
    "recorder_snapshot",
    "render_dashboard",
    "render_run",
    "snapshot",
    "write_chrome_trace",
    "write_snapshot",
]
