"""Observability: span tracing, trace export, latency breakdowns, snapshots.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and workflows.  The
usual entry points:

* :func:`install` / :class:`Tracer` — turn tracing on for subsequently
  created simulators (the CLI's ``--trace-out`` and ``repro trace``).
* :func:`write_chrome_trace` — Perfetto-viewable trace-event JSON.
* :func:`fetch_breakdown` / :func:`format_fetch_breakdown` — per-layer
  latency decomposition of ``mread``/``mwrite`` (the paper's Tables 3/4).
* :func:`snapshot` / :func:`write_snapshot` — diffable per-run metrics.
"""

from repro.obs.breakdown import (COMPONENT_LAYER, LAYER_ORDER,
                                 fetch_breakdown, format_fetch_breakdown,
                                 layer_of)
from repro.obs.export import chrome_trace, dump_chrome_trace, \
    write_chrome_trace
from repro.obs.snapshot import dump_snapshot, group_name, merged_snapshot, \
    recorder_snapshot, snapshot, write_snapshot
from repro.obs.tracer import NULL_TRACER, Span, Tracer, default_tracer, \
    install

__all__ = [
    "COMPONENT_LAYER",
    "LAYER_ORDER",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "chrome_trace",
    "default_tracer",
    "dump_chrome_trace",
    "dump_snapshot",
    "fetch_breakdown",
    "format_fetch_breakdown",
    "group_name",
    "install",
    "layer_of",
    "merged_snapshot",
    "recorder_snapshot",
    "snapshot",
    "write_chrome_trace",
    "write_snapshot",
]
