"""Chrome trace-event JSON export, viewable in Perfetto.

Maps the tracer's model onto the trace-event format: each *component*
becomes a Chrome "process" (pid) named by a metadata event, each
simulated process becomes a thread (tid), finished spans become complete
("X") events and zero-duration spans become instant ("i") events.
Virtual seconds are exported as microseconds, the unit Perfetto expects.

The export is fully deterministic for a deterministic trace: events are
emitted in span-begin order, pids are assigned in first-appearance
order, and the JSON is serialized with sorted keys and fixed
separators — two runs of the same seeded experiment produce
byte-identical files (see ``tests/obs/test_trace_determinism.py``).
"""

from __future__ import annotations

import json
from typing import IO

from repro.obs.files import atomic_write
from repro.obs.tracer import Tracer


def chrome_trace(tracer: Tracer) -> dict:
    """Build the trace-event JSON object for ``tracer``'s spans.

    Unfinished spans (a component crashed mid-request or the run was cut
    short) are exported as instant events tagged ``unfinished`` so they
    remain visible rather than silently vanishing.
    """
    pids: dict[str, int] = {}
    events: list[dict] = []
    for span in tracer.spans:
        pid = pids.get(span.component)
        if pid is None:
            pid = len(pids) + 1
            pids[span.component] = pid
        args = dict(span.tags) if span.tags else {}
        args["span_id"] = span.span_id
        if span.parent_id:
            args["parent_id"] = span.parent_id
        event = {
            "name": span.name,
            "cat": span.component,
            "pid": pid,
            "tid": span.track,
            "ts": span.start * 1e6,
            "args": args,
        }
        if span.end is None:
            event["ph"] = "i"
            event["s"] = "t"
            args["unfinished"] = True
        elif span.end == span.start:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = (span.end - span.start) * 1e6
        events.append(event)
    metadata = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": component}}
        for component, pid in pids.items()
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def dump_chrome_trace(tracer: Tracer, fp: IO[str]) -> None:
    """Serialize the trace to ``fp`` in Chrome trace-event JSON."""
    json.dump(chrome_trace(tracer), fp, sort_keys=True,
              separators=(",", ":"))


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the trace to ``path``; returns the number of events."""
    obj = chrome_trace(tracer)
    with atomic_write(path) as fp:
        json.dump(obj, fp, sort_keys=True, separators=(",", ":"))
    return len(obj["traceEvents"])
