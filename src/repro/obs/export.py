"""Chrome trace-event JSON export, viewable in Perfetto.

Maps the tracer's model onto the trace-event format: each *component*
becomes a Chrome "process" (pid) named by a metadata event, each
simulated process becomes a thread (tid), finished spans become complete
("X") events and zero-duration spans become instant ("i") events.
Virtual seconds are exported as microseconds, the unit Perfetto expects.

The export is fully deterministic for a deterministic trace: events are
emitted in span-begin order, pids are assigned in first-appearance
order, and the JSON is serialized with sorted keys and fixed
separators — two runs of the same seeded experiment produce
byte-identical files (see ``tests/obs/test_trace_determinism.py``).
"""

from __future__ import annotations

import json
from typing import IO

from repro.obs.files import atomic_write
from repro.obs.tracer import Tracer


def chrome_trace(tracer: Tracer, sli=None) -> dict:
    """Build the trace-event JSON object for ``tracer``'s spans.

    Unfinished spans (a component crashed mid-request or the run was cut
    short) are exported as instant events tagged ``unfinished`` so they
    remain visible rather than silently vanishing.

    With an ``sli`` collector (:mod:`repro.obs.slo.sli`) the export
    gains a dedicated **critical-path** pseudo-process: one thread per
    request kind, whose events are each request's dominant-stage
    segments laid out contiguously — the "where did this request's time
    go" view, directly scrubbing-aligned with the raw spans above it.
    """
    pids: dict[str, int] = {}
    events: list[dict] = []
    for span in tracer.spans:
        pid = pids.get(span.component)
        if pid is None:
            pid = len(pids) + 1
            pids[span.component] = pid
        args = dict(span.tags) if span.tags else {}
        args["span_id"] = span.span_id
        if span.parent_id:
            args["parent_id"] = span.parent_id
        event = {
            "name": span.name,
            "cat": span.component,
            "pid": pid,
            "tid": span.track,
            "ts": span.start * 1e6,
            "args": args,
        }
        if span.end is None:
            event["ph"] = "i"
            event["s"] = "t"
            args["unfinished"] = True
        elif span.end == span.start:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = (span.end - span.start) * 1e6
        events.append(event)
    if sli is not None:
        events.extend(_critical_path_events(sli, pids))
    metadata = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": component}}
        for component, pid in pids.items()
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def _critical_path_events(sli, pids: dict) -> list[dict]:
    """Complete events for the critical-path pseudo-process: each kept
    request record contributes one event per attributed stage segment,
    on a thread named by its request kind (deterministic: kinds are
    numbered in first-record order, segments in record order)."""
    pid = len(pids) + 1
    pids["critical-path"] = pid
    tids: dict[str, int] = {}
    events: list[dict] = []
    for record in sli.iter_records():
        tid = tids.get(record.kind)
        if tid is None:
            tid = tids[record.kind] = len(tids) + 1
        for t0, t1, stage in record.segments:
            events.append({
                "name": stage,
                "cat": "critical-path",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": t0 * 1e6,
                "dur": (t1 - t0) * 1e6,
                "args": {"kind": record.kind,
                         "request": record.span_id,
                         "outcome": record.outcome,
                         "dominant": record.dominant},
            })
    events.extend(
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
         "args": {"name": kind}}
        for kind, tid in tids.items())
    return events


def dump_chrome_trace(tracer: Tracer, fp: IO[str], sli=None) -> None:
    """Serialize the trace to ``fp`` in Chrome trace-event JSON."""
    json.dump(chrome_trace(tracer, sli=sli), fp, sort_keys=True,
              separators=(",", ":"))


def write_chrome_trace(tracer: Tracer, path: str, sli=None) -> int:
    """Write the trace to ``path``; returns the number of events."""
    obj = chrome_trace(tracer, sli=sli)
    with atomic_write(path) as fp:
        json.dump(obj, fp, sort_keys=True, separators=(",", ":"))
    return len(obj["traceEvents"])
