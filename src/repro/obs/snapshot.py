"""Per-run metrics snapshots: every Recorder in the system, as JSON.

Benchmark trajectories only become debuggable when two runs can be
*diffed*.  A snapshot walks the global :class:`~repro.metrics.recorder.
Recorder` registry (every daemon, NIC, disk, cache and library owns one)
and serializes counters plus sample summaries — count / mean / min /
max / p50 / p90 / p99 — with stable key sorting, so ``diff run_a.json
run_b.json`` pinpoints exactly which component's behaviour moved between
two code versions or two configurations.

Recorder names embed ephemeral identifiers (every socket and RPC client
carries its port number, several simulators in one experiment each
build their own ``cmd``), which would make snapshots enormous and
un-diffable.  Snapshots therefore *group* recorders by a normalized
name — trailing ``:port`` / ``#n`` components are stripped — and merge
each group: counters are summed, sample lists pooled.  The per-group
``instances`` field records how many recorders were merged.

The CLI's ``--metrics-out run.json`` writes one of these after any
experiment.
"""

from __future__ import annotations

import json
import re
from typing import IO, Iterable, Optional

from repro.metrics.recorder import Recorder, iter_recorders
from repro.obs.files import atomic_write

#: sample quantiles included in every snapshot
QUANTILES = (0.5, 0.9, 0.99)

#: trailing ephemeral id parts stripped from recorder names when grouping
_EPHEMERAL = re.compile(r"(:\d+|#\d+)+$")


def group_name(name: str) -> str:
    """Normalize a recorder name for grouping (drop ports / instance ids)."""
    return _EPHEMERAL.sub("", name) or "recorder"


def _summary(vals: list[float]) -> dict:
    ordered = sorted(vals)
    n = len(ordered)
    summary = {
        "count": n,
        "mean": sum(ordered) / n if n else 0.0,
        "min": ordered[0] if n else 0.0,
        "max": ordered[-1] if n else 0.0,
    }
    for q in QUANTILES:
        if not n:
            summary[f"p{int(q * 100)}"] = 0.0
            continue
        pos = q * (n - 1)
        lo = int(pos)
        frac = pos - lo
        if frac == 0.0 or lo + 1 >= n:
            summary[f"p{int(q * 100)}"] = ordered[lo]
        else:
            summary[f"p{int(q * 100)}"] = \
                ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac
    return summary


def merged_snapshot(recs: Iterable[Recorder]) -> dict:
    """Summarize a group of recorders: summed counters, pooled samples."""
    counters: dict[str, float] = {}
    pooled: dict[str, list[float]] = {}
    n = 0
    for rec in recs:
        n += 1
        for key in rec.counter_names():
            counters[key] = counters.get(key, 0.0) + rec.count(key)
        for key in rec.sample_names():
            pooled.setdefault(key, []).extend(rec.samples(key))
    return {
        "instances": n,
        "counters": counters,
        "samples": {k: _summary(v) for k, v in pooled.items()},
    }


def recorder_snapshot(rec: Recorder) -> dict:
    """Summarize one recorder: raw counters, per-key sample summaries."""
    return merged_snapshot([rec])


def snapshot(meta: Optional[dict] = None) -> dict:
    """Snapshot every live recorder, grouped by normalized name."""
    groups: dict[str, list[Recorder]] = {}
    for rec in iter_recorders():
        groups.setdefault(group_name(rec.name), []).append(rec)
    return {
        "meta": meta or {},
        "recorders": {name: merged_snapshot(recs)
                      for name, recs in groups.items()},
    }


def dump_snapshot(fp: IO[str], meta: Optional[dict] = None) -> None:
    """Serialize the current metrics snapshot to ``fp`` as JSON."""
    json.dump(snapshot(meta), fp, sort_keys=True, indent=1)


def write_snapshot(path: str, meta: Optional[dict] = None) -> int:
    """Write a snapshot to ``path``; returns the recorder-group count."""
    snap = snapshot(meta)
    with atomic_write(path) as fp:
        json.dump(snap, fp, sort_keys=True, indent=1)
        fp.write("\n")
    return len(snap["recorders"])
