"""Reproduction of "Dodo: A User-level System for Exploiting Idle Memory
in Workstation Clusters" (Koussih, Acharya, Setia; HPDC 1999).

Package layout:

* :mod:`repro.sim` -- deterministic discrete-event simulation kernel
* :mod:`repro.net` -- switched Ethernet, UDP/U-Net models, usocket, RPC,
  and the blast/selective-NACK bulk transfer protocol
* :mod:`repro.storage` -- mechanical disk, OS page cache, file system
* :mod:`repro.cluster` -- workstations, owners, idleness, memory traces
* :mod:`repro.core` -- Dodo itself: cmd / rmd / imd daemons, libdodo
  (mopen/mread/mwrite/mclose/msync) and libmanage (copen/cread/...)
* :mod:`repro.workloads` -- lu, dmine, and the three synthetic benchmarks
* :mod:`repro.exp` -- experiment drivers for every paper table/figure
* :mod:`repro.metrics` -- counters, time series, report formatting

Entry points: ``python -m repro --help`` or the scripts in ``examples/``.
"""

__version__ = "1.0.0"

from repro.sim import Simulator

__all__ = ["Simulator", "__version__"]
