"""Command-line interface: run any paper experiment from the shell.

Examples::

    python -m repro list
    python -m repro fig1
    python -m repro fig7 --scale-lu 1/64 --scale-dmine 1/16
    python -m repro fig8 --scale 1/128 --iters 3
    python -m repro fig7 --trace-out fig7.json --metrics-out fig7-metrics.json
    python -m repro trace fig7 --out fig7.json
    python -m repro top fig7
    python -m repro slo fig7 --out fig7-slo.json
    python -m repro fig7 --telemetry-out fig7.csv --events-out fig7.jsonl \\
        --audit raise
    python -m repro serve-bench --shards 1 2 4 8 --out BENCH_serving.json
    python -m repro chaos fig7 --seed 3 --plan-out plan.json
    python -m repro chaos fig7 --plan-in plan.json --events-out chaos.jsonl
    python -m repro sweep ci-grid --jobs 4 --cache-dir .sweep-cache
    python -m repro sweep myspec.json --jobs 8 --resume --out results.json
    python -m repro record fig7 --seed 3 --out runs/fig7
    python -m repro serve runs/fig7 --port 8000
    python -m repro serve nondedicated --chaos --seed 5
    python -m repro whatif runs/fig7 --replacement mru
    python -m repro all --quick

``--trace-out`` writes a Chrome trace-event JSON (load it in Perfetto or
``chrome://tracing``); ``--metrics-out`` dumps every Recorder's counters
and sample summaries.  ``repro trace <exp>`` is shorthand that also
prints the fetch-path latency breakdown.  ``--telemetry-out`` /
``--events-out`` sample cluster state over virtual time and record
lifecycle events; ``--audit`` cross-checks directory/allocator/network
invariants while the run executes; ``repro top <exp>`` renders the
sampled series as an ASCII dashboard.  ``repro slo <exp>`` collects
per-request SLIs (tail-latency sketches, outcome classes, critical-path
stage blame) and evaluates SLO burn-rate alerts over the run.  See
docs/OBSERVABILITY.md.

``repro chaos <exp>`` runs a scaled-down experiment under a
seed-deterministic nemesis fault schedule with the invariant auditor in
``raise`` mode; ``--plan-out`` saves the schedule as JSON, ``--plan-in``
replays a saved one bit-for-bit.  See docs/TESTING.md.

``repro sweep <spec.json|builtin>`` fans a grid of independent
simulation points (experiment x overrides x seed) across ``--jobs``
worker processes, memoizing each point in a content-addressed
``--cache-dir``; ``--resume`` skips already-cached points so an
interrupted sweep continues where it left off.  See docs/SWEEPS.md.

``repro record <scenario>`` runs one seeded scenario with full
observability and writes a *run directory* (telemetry + event log +
canonical metrics).  ``repro serve <run-dir|scenario>`` serves the fleet
dashboard over it — or live, against a scenario still executing.
``repro whatif <run-dir>`` replays a recorded run under a changed
recruitment/placement/replacement policy and prints the side-by-side
delta.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction
from typing import Callable


def _scale(text: str) -> float:
    """Parse '1/64', '0.015625' or '1' into a float scale."""
    return float(Fraction(text))


class CliError(Exception):
    """A user-facing CLI failure: printed as one line, exit code 2.

    Raised for unreadable input files and invalid references (unknown
    experiments in a sweep spec, malformed fault plans) — anything that
    is the invoker's mistake rather than a bug, and therefore must not
    produce a traceback.
    """


def cmd_fig1(args) -> None:
    """Figure 1: cluster-wide available memory over simulated days."""
    from repro.exp import sec2
    print(sec2.format_fig1(sec2.run_fig1(days=args.days)))


def cmd_table1(args) -> None:
    """Table 1: memory by use (kernel/file-cache/process/available)."""
    from repro.exp import sec2
    print(sec2.format_table1(sec2.run_table1(days=args.days)))


def cmd_fig2(args) -> None:
    """Figure 2: per-workstation availability variation."""
    from repro.exp import sec2
    print(sec2.format_fig2(sec2.run_fig2(days=args.days)))


def cmd_disk(args) -> None:
    """Section 5.1: application-level disk bandwidth calibration."""
    from repro.exp import disk_cal
    print(disk_cal.format_disk_calibration(
        disk_cal.run_disk_calibration()))


def cmd_fig7(args) -> None:
    """Figure 7: lu and dmine application speedups."""
    from repro.exp import fig7
    print(fig7.format_fig7(fig7.run_fig7(
        scale_lu=args.scale_lu, scale_dmine=args.scale_dmine)))


def cmd_fig8(args) -> None:
    """Figure 8: the four synthetic-benchmark panels."""
    from repro.exp import fig8
    print(fig8.format_fig8(fig8.run_fig8(scale=args.scale,
                                         num_iter=args.iters,
                                         jobs=getattr(args, "jobs", 1))))


def cmd_scale(args) -> None:
    """Thousand-host scale-out series: simulator throughput table."""
    import json

    from repro.exp import scale as sc
    hosts = tuple(args.hosts)
    results = sc.run_scaling(hosts, jobs=getattr(args, "jobs", 1),
                             num_iter=args.iters, owners=not args.no_owners)
    print(sc.format_scale(results))
    if args.out:
        with open(args.out, "w") as f:
            json.dump(results, f, indent=1, sort_keys=True)
        print(f"wrote {args.out}")


def cmd_nondedicated(args) -> None:
    """Section 5.3.1: Dodo on a desktop cluster with owner churn."""
    from repro.exp import nondedicated as nd
    print(nd.format_nondedicated(nd.run_nondedicated(
        nd.NonDedicatedParams(num_iter=args.iters))))


def cmd_cache(args) -> None:
    """Elastic-caching ablation: eviction policies × workloads, plus
    the migration and adaptive variants (docs/CACHING.md)."""
    from repro.exp.cache import format_cache, run_cache_ablation
    try:
        results = run_cache_ablation(
            seed=args.seed, num_iter=args.iters,
            policies=tuple(args.policies),
            workloads=tuple(args.workloads))
    except ValueError as exc:
        # unknown policy / workload names land here from config
        # validation: one repro: line and exit 2, not a traceback
        raise CliError(str(exc)) from exc
    print(format_cache(results))
    if args.out:
        from repro.sweep.spec import canonical_text
        with open(args.out, "w") as fp:
            fp.write(canonical_text(results) + "\n")
        print(f"wrote ablation results to {args.out}", file=sys.stderr)


def cmd_ablations(args) -> None:
    """All design-choice ablations, one table each."""
    from repro.exp import ablations as ab
    print(ab.format_allocator_ablation(ab.run_allocator_ablation()))
    print()
    print(ab.format_refraction_ablation(
        ab.run_refraction_ablation(scale=args.scale)))
    print()
    print(ab.format_policy_ablation(ab.run_policy_ablation(
        scale=args.scale)))
    print()
    print(ab.format_pregrant_ablation(ab.run_pregrant_ablation()))


def cmd_chaos(args) -> None:
    """Nemesis fault-injection run; replays --plan-in bit-for-bit."""
    from repro.faults.chaos import format_chaos, run_chaos
    from repro.faults.plan import FaultPlan
    plan = None
    if args.plan_in:
        try:
            plan = FaultPlan.read(args.plan_in)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise CliError(f"cannot read fault plan {args.plan_in!r}: "
                           f"{exc}") from exc
    run = run_chaos(args.experiment, seed=args.seed, plan=plan,
                    audit=args.chaos_audit, horizon_s=args.horizon)
    print(format_chaos(run))
    if args.plan_out:
        run["plan"].write(args.plan_out)
        print(f"wrote {len(run['plan'])}-event fault plan to "
              f"{args.plan_out}", file=sys.stderr)
    if args.events_out:
        n = run["eventlog"].write_jsonl(args.events_out)
        print(f"wrote {n} events to {args.events_out}", file=sys.stderr)


def cmd_serve_bench(args) -> None:
    """Serve-bench: shard-count scaling of the Zipfian serving tier."""
    import json

    from repro.exp import serving as sv
    results = sv.run_serve_bench(
        tuple(args.shards), jobs=getattr(args, "jobs", 1),
        seed=args.seed, replication=not args.no_replication,
        arrival_rate=args.rate, duration_s=args.duration,
        n_keys=args.keys)
    print(sv.format_serving(results))
    if args.out:
        with open(args.out, "w") as f:
            json.dump(results, f, indent=1, sort_keys=True)
        print(f"wrote {args.out}")


def cmd_all(args) -> None:
    """Everything: shell out to examples/reproduce_paper.py."""
    import subprocess
    cmd = [sys.executable, "examples/reproduce_paper.py"]
    if args.quick:
        cmd.append("--quick")
    raise SystemExit(subprocess.call(cmd))


def cmd_sweep(args) -> int:
    """Parallel cached sweep over a grid of experiment points."""
    from repro.sweep import (EXPERIMENTS, SpecError, load_spec,
                             run_sweep)
    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        raise CliError(str(exc)) from exc
    unknown = sorted({p.experiment for p in spec.points}
                     - set(EXPERIMENTS))
    if unknown:
        raise CliError(
            f"spec {args.spec!r} references unknown experiment(s) "
            f"{', '.join(unknown)}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}")
    result = run_sweep(spec, jobs=args.jobs,
                       cache_dir=args.cache_dir or None,
                       resume=args.resume, out=args.out,
                       progress=None if args.quiet else sys.stderr)
    print(result.summary())
    for run in result.runs:
        if run.status == "failed":
            print(f"  failed: {run.point.label()}: {run.error}",
                  file=sys.stderr)
    if args.out:
        print(f"wrote sweep results to {args.out}", file=sys.stderr)
    return 0 if result.ok else 1


def _policy_from_args(args):
    """A WhatIfPolicy from --replacement/--placement/... (None = keep)."""
    from repro.obs.fleet.whatif import WhatIfPolicy
    return WhatIfPolicy(
        replacement=args.replacement or "lru",
        placement=args.placement or "random",
        idle_window_s=args.idle_window,
        load_threshold=args.load_threshold)


def cmd_record(args) -> None:
    """Record one scenario run as a run directory for serve/whatif."""
    from repro.obs.fleet.whatif import record_run
    try:
        meta = record_run(args.out, args.scenario, seed=args.seed,
                          policy=_policy_from_args(args),
                          chaos=args.chaos, horizon_s=args.horizon,
                          interval_s=args.interval,
                          audit=args.record_audit)
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    m = meta["metrics"]
    print(f"recorded {meta['scenario']} seed={meta['seed']}"
          + (" chaos" if meta.get("chaos") else "") + f" -> {args.out}")
    print(f"  requests={m['requests']} fetches={m['fetches']} "
          f"refetches={m['refetches']} reclaims={m['reclaims']} "
          f"fetch_p95={m['fetch_p95_s']:g}s elapsed={m['elapsed_s']:g}s")


def cmd_whatif(args) -> None:
    """Replay a recorded run under a changed policy; print the delta."""
    from repro.obs.fleet.store import RunDirError
    from repro.obs.fleet.whatif import format_whatif, run_whatif
    try:
        doc = run_whatif(args.run_dir, replacement=args.replacement,
                         placement=args.placement,
                         idle_window_s=args.idle_window,
                         load_threshold=args.load_threshold)
    except (RunDirError, ValueError) as exc:
        raise CliError(str(exc)) from exc
    print(format_whatif(doc))
    if args.out:
        from repro.obs.files import atomic_write
        from repro.sweep.spec import canonical_text
        with atomic_write(args.out) as fp:
            fp.write(canonical_text(doc))
            fp.write("\n")
        print(f"wrote what-if document to {args.out}", file=sys.stderr)


def cmd_serve(args) -> None:
    """Serve the fleet dashboard over a run directory or a live run."""
    import os
    import threading
    from repro.obs.fleet.server import serve_live, serve_run_dir
    from repro.obs.fleet.store import RunDirError
    if os.path.isdir(args.target):
        try:
            server = serve_run_dir(args.target, host=args.host,
                                   port=args.port)
        except RunDirError as exc:
            raise CliError(str(exc)) from exc
    else:
        from repro.obs.eventlog import EventLog
        from repro.obs.fleet.whatif import SCENARIOS, run_scenario
        from repro.obs.timeseries import Telemetry
        if args.target not in SCENARIOS:
            raise CliError(
                f"{args.target!r} is neither a run directory nor a "
                f"live scenario; scenarios: {', '.join(SCENARIOS)}")
        telemetry = Telemetry(interval_s=args.interval)
        eventlog = EventLog(level="debug", telemetry=telemetry)
        server = serve_live(
            telemetry, eventlog, host=args.host, port=args.port,
            meta={"scenario": args.target, "seed": args.seed,
                  "chaos": bool(args.chaos)})
        threading.Thread(
            target=run_scenario, name="fleet-sim", daemon=True,
            kwargs=dict(scenario=args.target, seed=args.seed,
                        chaos=args.chaos, horizon_s=args.horizon,
                        interval_s=args.interval, telemetry=telemetry,
                        eventlog=eventlog, slo=True)).start()
    print(f"serving fleet dashboard at {server.url} (Ctrl-C to stop)",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


def cmd_trace(args) -> None:
    """Run one experiment with tracing forced on; delegate to its cmd_*."""
    args.trace_out = args.out
    COMMANDS[args.experiment][1](args)


def cmd_top(args) -> None:
    """Run one experiment with telemetry forced on; delegate to its
    cmd_*.  The dashboard itself renders in :func:`main` afterwards."""
    COMMANDS[args.experiment][1](args)


def cmd_slo(args) -> None:
    """Run one experiment with SLI collection + SLO evaluation forced
    on; delegate to its cmd_*.  The report renders afterwards."""
    COMMANDS[args.experiment][1](args)


COMMANDS: dict[str, tuple[str, Callable]] = {
    "fig1": ("Figure 1: cluster memory availability", cmd_fig1),
    "table1": ("Table 1: memory by use per host class", cmd_table1),
    "fig2": ("Figure 2: per-workstation variation", cmd_fig2),
    "disk": ("Section 5.1 disk bandwidth table", cmd_disk),
    "fig7": ("Figure 7: lu and dmine speedups", cmd_fig7),
    "fig8": ("Figure 8: synthetic benchmark panels", cmd_fig8),
    "scale": ("thousand-host scale-out throughput series", cmd_scale),
    "serve-bench": ("sharded-directory serving tier: shard-count sweep",
                    cmd_serve_bench),
    "nondedicated": ("Section 5.3.1 desktop-cluster run", cmd_nondedicated),
    "ablations": ("design-choice ablations", cmd_ablations),
    "cache": ("elastic-caching ablation: policies, migration, "
              "online selection", cmd_cache),
    "chaos": ("nemesis fault-injection run with invariant auditing",
              cmd_chaos),
    "sweep": ("parallel cached sweep over a grid of experiment points",
              cmd_sweep),
    "record": ("record a scenario run directory for serve/whatif",
               cmd_record),
    "serve": ("serve the fleet dashboard over a recorded or live run",
              cmd_serve),
    "whatif": ("replay a recorded run under a changed policy",
               cmd_whatif),
    "all": ("everything (examples/reproduce_paper.py)", cmd_all),
}

#: subcommands that run simulations and accept the observability options
#: ("all" shells out to a script, so tracing cannot be injected there)
_TRACEABLE = ("fig1", "table1", "fig2", "disk", "fig7", "fig8",
              "nondedicated", "ablations")


def _add_experiment_args(p: argparse.ArgumentParser, name: str) -> None:
    if name in ("fig1", "table1", "fig2"):
        p.add_argument("--days", type=float, default=4.0,
                       help="simulated trace length in days")
    if name == "fig7":
        p.add_argument("--scale-lu", type=_scale, default=1 / 64)
        p.add_argument("--scale-dmine", type=_scale, default=1 / 16)
    if name == "fig8":
        p.add_argument("--scale", type=_scale, default=1 / 64)
        p.add_argument("--iters", type=int, default=4)
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the panel grid "
                            "(default: 1; results are identical at "
                            "any value)")
    if name == "scale":
        p.add_argument("--hosts", type=int, nargs="+",
                       default=[500, 1000, 2000],
                       help="host counts of the series "
                            "(default: 500 1000 2000)")
        p.add_argument("--iters", type=int, default=2)
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes, one scaling point each")
        p.add_argument("--no-owners", action="store_true",
                       help="skip the background owner processes")
        p.add_argument("--out", metavar="FILE", default=None,
                       help="also write the series as JSON")
    if name == "serve-bench":
        p.add_argument("--shards", type=int, nargs="+",
                       default=[1, 2, 4, 8],
                       help="shard counts of the series "
                            "(default: 1 2 4 8)")
        p.add_argument("--seed", type=int, default=21)
        p.add_argument("--rate", type=float, default=800.0,
                       metavar="RPS",
                       help="open-loop Poisson arrival rate "
                            "(default: 800)")
        p.add_argument("--duration", type=float, default=10.0,
                       metavar="SECONDS",
                       help="measured serving window (default: 10)")
        p.add_argument("--keys", type=int, default=512,
                       help="distinct keys in remote memory "
                            "(default: 512)")
        p.add_argument("--no-replication", action="store_true",
                       help="run the shards without primary/backup "
                            "log shipping")
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes, one shard-count point "
                            "each (results identical at any value)")
        p.add_argument("--out", metavar="FILE", default=None,
                       help="also write the series as JSON")
    if name == "nondedicated":
        p.add_argument("--iters", type=int, default=4)
    if name == "cache":
        # policy/workload names are validated by the config layer, not
        # argparse choices, so typos produce the one-line repro: error
        # that names every accepted value
        p.add_argument("--policies", nargs="+", metavar="POLICY",
                       default=["none", "lru", "lfu", "clock",
                                "cost-aware"],
                       help="eviction policies to ablate (default: "
                            "none lru lfu clock cost-aware)")
        p.add_argument("--workloads", nargs="+", metavar="WORKLOAD",
                       default=["nondedicated", "fig7"],
                       help="workloads to run each policy on "
                            "(default: nondedicated fig7)")
        p.add_argument("--seed", type=int, default=9)
        p.add_argument("--iters", type=int, default=6,
                       help="benchmark iterations per cell (default: 6)")
        p.add_argument("--out", metavar="FILE", default=None,
                       help="also write the ablation as canonical JSON")
    if name == "ablations":
        p.add_argument("--scale", type=_scale, default=1 / 128)
    if name == "all":
        p.add_argument("--quick", action="store_true")
    if name == "chaos":
        from repro.faults.chaos import EXPERIMENTS
        p.add_argument("experiment", choices=sorted(EXPERIMENTS),
                       help="which scenario the nemesis torments")
        p.add_argument("--seed", type=int, default=0,
                       help="drives both the fault schedule and the "
                            "simulator (default: 0)")
        p.add_argument("--plan-in", metavar="FILE", default=None,
                       help="replay a previously exported fault plan "
                            "(its embedded seed takes precedence)")
        p.add_argument("--plan-out", metavar="FILE", default=None,
                       help="export the executed fault plan as JSON")
        p.add_argument("--events-out", metavar="FILE", default=None,
                       help="write the run's structured event log as JSONL")
        p.add_argument("--horizon", type=float, default=20.0,
                       metavar="SECONDS",
                       help="virtual-time window faults are scheduled in "
                            "(default: 20)")
        p.add_argument("--audit", default="raise", dest="chaos_audit",
                       choices=("off", "warn", "raise"),
                       help="invariant-audit mode after every injection, "
                            "heal, and at teardown (default: raise)")
    if name in ("record", "whatif"):
        _add_policy_args(p)
    if name == "record":
        from repro.obs.fleet.whatif import SCENARIOS
        p.add_argument("scenario", choices=SCENARIOS,
                       help="which recordable scenario to run")
        p.add_argument("--out", metavar="DIR", required=True,
                       help="run directory to write (created if needed)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--chaos", action="store_true",
                       help="run under the seed-deterministic nemesis")
        p.add_argument("--horizon", type=float, default=20.0,
                       metavar="SECONDS",
                       help="virtual-time fault window (default: 20)")
        p.add_argument("--interval", type=float, default=0.25,
                       metavar="SECONDS",
                       help="telemetry sampling period (default: 0.25)")
        p.add_argument("--audit", default="off", dest="record_audit",
                       choices=("off", "warn", "raise"),
                       help="invariant auditing during the run "
                            "(default: off)")
    if name == "whatif":
        p.add_argument("run_dir", metavar="RUN_DIR",
                       help="a run directory written by 'repro record'")
        p.add_argument("--out", metavar="FILE", default=None,
                       help="also write the structured what-if document "
                            "as canonical JSON")
    if name == "serve":
        p.add_argument("target", metavar="RUN_DIR|SCENARIO",
                       help="a recorded run directory, or a scenario "
                            "name to run live (fig7, nondedicated)")
        p.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
        p.add_argument("--port", type=int, default=8000,
                       help="bind port (default: 8000; 0 picks a free "
                            "one)")
        p.add_argument("--seed", type=int, default=0,
                       help="live mode: simulator seed (default: 0)")
        p.add_argument("--chaos", action="store_true",
                       help="live mode: run under the nemesis")
        p.add_argument("--horizon", type=float, default=20.0,
                       metavar="SECONDS")
        p.add_argument("--interval", type=float, default=0.25,
                       metavar="SECONDS",
                       help="live mode: telemetry sampling period "
                            "(default: 0.25)")
    if name == "sweep":
        from repro.sweep.spec import BUILTIN_SPECS
        p.add_argument("spec", metavar="SPEC",
                       help="path to a sweep spec JSON, or a builtin: "
                            + ", ".join(sorted(BUILTIN_SPECS)))
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default: 1; per-point "
                            "results are byte-identical at any value)")
        p.add_argument("--cache-dir", metavar="DIR",
                       default=".sweep-cache",
                       help="content-addressed result cache directory "
                            "(default: .sweep-cache; '' disables "
                            "caching)")
        p.add_argument("--resume", action="store_true",
                       help="skip points already in the cache instead "
                            "of recomputing them")
        p.add_argument("--out", metavar="FILE", default=None,
                       help="write the full sweep record (spec, keys, "
                            "per-point results) as canonical JSON")
        p.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress lines")


def build_parser() -> argparse.ArgumentParser:
    """The complete ``repro`` argument parser (one subcommand per
    experiment, plus trace/top/chaos/sweep)."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command")

    listp = sub.add_parser("list", help="list available experiments")
    listp.set_defaults(func=None)

    for name, (help_text, func) in COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        p.set_defaults(func=func)
        _add_experiment_args(p, name)
        if name in _TRACEABLE:
            p.add_argument("--trace-out", metavar="FILE", default=None,
                           help="write a Chrome trace-event JSON of the run")
            p.add_argument("--metrics-out", metavar="FILE", default=None,
                           help="write a JSON snapshot of all recorders")
            p.add_argument("--kernel-events", action="store_true",
                           help="include per-event kernel dispatch instants "
                                "in the trace (verbose)")
            _add_telemetry_args(p)

    tracep = sub.add_parser(
        "trace", help="run one experiment with tracing on and report "
                      "the fetch-path latency breakdown")
    tracep.add_argument("experiment", choices=_TRACEABLE)
    tracep.add_argument("--out", metavar="FILE", default="trace.json",
                        help="trace file to write (default: trace.json)")
    tracep.add_argument("--metrics-out", metavar="FILE", default=None)
    tracep.add_argument("--kernel-events", action="store_true")
    _add_telemetry_args(tracep)
    tracep.set_defaults(func=cmd_trace, _trace_shorthand=True)

    topp = sub.add_parser(
        "top", help="run one experiment with telemetry on and render an "
                    "ASCII dashboard of cluster memory/idleness over "
                    "virtual time")
    topp.add_argument("experiment", choices=_TRACEABLE)
    _add_telemetry_args(topp)
    topp.set_defaults(func=cmd_top, _top_shorthand=True)

    slop = sub.add_parser(
        "slo", help="run one experiment with per-request SLI collection "
                    "on and report tail latencies, the critical-path "
                    "blame table and SLO burn-rate verdicts")
    slop.add_argument("experiment", choices=_TRACEABLE)
    slop.add_argument("--out", metavar="FILE", default=None,
                      help="also write the report as canonical JSON")
    slop.add_argument("--alpha", type=float, default=0.01,
                      help="latency-sketch relative-error bound "
                           "(default: 0.01)")
    slop.add_argument("--trace-out", metavar="FILE", default=None,
                      help="also write the Chrome trace (with the "
                           "critical-path track) of the run")
    _add_telemetry_args(slop)
    slop.set_defaults(func=cmd_slo, _slo_shorthand=True)
    return parser


def _add_policy_args(p: argparse.ArgumentParser) -> None:
    """The what-if policy knobs shared by ``record`` and ``whatif``.

    All default to None: ``record`` fills in the scenario defaults
    (lru/random), ``whatif`` treats None as "keep the recorded value".
    """
    from repro.core.manager import PLACEMENTS
    from repro.core.policies import POLICIES
    p.add_argument("--replacement", default=None,
                   choices=sorted(POLICIES),
                   help="region-cache replacement policy")
    p.add_argument("--placement", default=None, choices=PLACEMENTS,
                   help="manager host-placement policy")
    p.add_argument("--idle-window", type=float, default=None,
                   metavar="SECONDS",
                   help="recruitment idle-window (nondedicated only)")
    p.add_argument("--load-threshold", type=float, default=None,
                   metavar="FRACTION",
                   help="recruitment load threshold (nondedicated only)")


def _add_telemetry_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--telemetry-out", metavar="FILE", default=None,
                   help="write sampled time series as long-format CSV")
    p.add_argument("--telemetry-json", metavar="FILE", default=None,
                   help="write sampled time series as JSON")
    p.add_argument("--telemetry-interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="virtual-time sampling period (default: 1.0)")
    p.add_argument("--events-out", metavar="FILE", default=None,
                   help="write the structured event log as JSONL")
    p.add_argument("--events-level", default="info",
                   choices=("debug", "info", "warn", "error"),
                   help="minimum event severity recorded (default: info)")
    p.add_argument("--audit", default="off",
                   choices=("off", "warn", "raise"), dest="audit_mode",
                   help="cross-check cluster invariants at sample points "
                        "and teardown (warn: report; raise: fail the run)")


def _finish_observability(args, tracer, sli=None) -> None:
    from repro.obs.breakdown import fetch_breakdown, format_fetch_breakdown
    from repro.obs.export import write_chrome_trace
    from repro.obs.snapshot import write_snapshot

    if getattr(args, "trace_out", None):
        n = write_chrome_trace(tracer, args.trace_out, sli=sli)
        print(f"\nwrote {n} trace events to {args.trace_out}",
              file=sys.stderr)
        breakdown = fetch_breakdown(tracer.spans)
        if breakdown["count"]:
            print()
            print(format_fetch_breakdown(breakdown))
    if getattr(args, "metrics_out", None):
        n = write_snapshot(args.metrics_out,
                           meta={"command": args.command})
        print(f"wrote {n} recorder snapshots to {args.metrics_out}",
              file=sys.stderr)


def _finish_telemetry(args, telemetry, eventlog, auditor) -> None:
    if getattr(args, "telemetry_out", None):
        n = telemetry.write_csv(args.telemetry_out)
        print(f"wrote {n} time-series rows to {args.telemetry_out}",
              file=sys.stderr)
    if getattr(args, "telemetry_json", None):
        n = telemetry.write_json(args.telemetry_json,
                                 meta={"command": args.command})
        print(f"wrote {n} time series to {args.telemetry_json}",
              file=sys.stderr)
    if getattr(args, "events_out", None):
        n = eventlog.write_jsonl(args.events_out)
        print(f"wrote {n} events to {args.events_out}", file=sys.stderr)
    if getattr(args, "_top_shorthand", False):
        from repro.obs.dashboard import render_dashboard
        print()
        print(render_dashboard(telemetry, eventlog=eventlog,
                               auditor=auditor, title=args.experiment))
    elif auditor is not None:
        print(auditor.format_report(), file=sys.stderr)


def _finish_slo(args, sli, engine) -> None:
    """Print the ``repro slo`` report; honor ``--out``."""
    from repro.obs.slo import build_slo_report, format_slo_report
    doc = build_slo_report(sli, engine,
                           meta={"command": args.experiment})
    print()
    print(format_slo_report(doc))
    if getattr(args, "out", None):
        from repro.obs.files import atomic_write
        from repro.sweep.spec import canonical_text
        with atomic_write(args.out) as fp:
            fp.write(canonical_text(doc))
            fp.write("\n")
        print(f"wrote SLO report to {args.out}", file=sys.stderr)


def main(argv=None) -> int:
    """Parse arguments and dispatch; returns the process exit code.

    User-input failures (:class:`CliError`) print as a single
    ``repro: ...`` line on stderr and exit 2 — never a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except CliError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    """Run the parsed command, wiring observability when requested."""
    if args.command is None or args.command == "list":
        from repro.sweep.spec import BUILTIN_SPECS
        print("available experiments:")
        for name, (help_text, _) in COMMANDS.items():
            print(f"  {name:14s} {help_text}")
        print("builtin sweep specs (repro sweep <name>):")
        for name in sorted(BUILTIN_SPECS):
            print(f"  {name}")
        return 0

    if getattr(args, "_trace_shorthand", False) \
            or getattr(args, "_top_shorthand", False) \
            or getattr(args, "_slo_shorthand", False):
        # "repro trace/top/slo <exp>": reuse the experiment's arg defaults
        exp_parser = argparse.ArgumentParser()
        _add_experiment_args(exp_parser, args.experiment)
        for key, value in vars(exp_parser.parse_args([])).items():
            setattr(args, key, value)

    if args.command in ("chaos", "sweep", "record", "serve", "whatif"):
        # these manage their own event logs and observability
        # (they must wrap only the simulations, not the CLI plumbing)
        return args.func(args) or 0

    wants_slo = bool(getattr(args, "_slo_shorthand", False))
    wants_trace = bool(getattr(args, "trace_out", None)
                       or getattr(args, "metrics_out", None)
                       or getattr(args, "_trace_shorthand", False)
                       or wants_slo)
    wants_telemetry = bool(getattr(args, "telemetry_out", None)
                           or getattr(args, "telemetry_json", None)
                           or getattr(args, "events_out", None)
                           or getattr(args, "audit_mode", "off") != "off"
                           or getattr(args, "_top_shorthand", False)
                           or wants_slo)
    if not wants_trace and not wants_telemetry:
        args.func(args)
        return 0

    from repro.metrics.recorder import start_collection, stop_collection
    tracer = telemetry = eventlog = auditor = sli = slo_engine = None
    prev_tracer = prev_telemetry = prev_eventlog = None
    if wants_trace:
        from repro.obs.tracer import Tracer, install
        tracer = Tracer(kernel_events=getattr(args, "kernel_events", False))
        prev_tracer = install(tracer)
    if wants_telemetry:
        from repro.core.config import ObsConfig
        from repro.obs.audit import make_auditor
        from repro.obs.eventlog import EventLog, install_eventlog
        from repro.obs.timeseries import Telemetry, install_telemetry
        obs = ObsConfig(
            telemetry_interval_s=getattr(args, "telemetry_interval", 1.0),
            eventlog_level=getattr(args, "events_level", "info"),
            audit_mode=getattr(args, "audit_mode", "off"))
        eventlog = EventLog(level=obs.eventlog_level)
        auditor = make_auditor(obs.audit_mode, eventlog=eventlog)
        telemetry = Telemetry(interval_s=obs.telemetry_interval_s,
                              max_samples=obs.telemetry_max_samples,
                              auditor=auditor, audit_every=obs.audit_every)
        eventlog.telemetry = telemetry  # shared run numbering
        prev_telemetry = install_telemetry(telemetry)
        prev_eventlog = install_eventlog(eventlog)
    if wants_slo:
        from repro.obs.slo import SliCollector, SloEngine, attach_sli
        sli = SliCollector(alpha=getattr(args, "alpha", 0.01))
        attach_sli(tracer, sli)
        slo_engine = SloEngine(sli=sli, eventlog=eventlog)
        sli.engine = slo_engine
        telemetry.slo = slo_engine
    collected = start_collection()  # keep recorders alive for the snapshot
    try:
        args.func(args)
        if telemetry is not None:
            telemetry.finalize()  # may raise AuditError in --audit raise
        if tracer is not None:
            _finish_observability(args, tracer, sli)
        if telemetry is not None:
            _finish_telemetry(args, telemetry, eventlog, auditor)
        if wants_slo:
            _finish_slo(args, sli, slo_engine)
    finally:
        stop_collection(collected)
        if wants_trace:
            from repro.obs.tracer import install
            install(prev_tracer)
        if wants_telemetry:
            install_telemetry(prev_telemetry)
            install_eventlog(prev_eventlog)
    return 0
