"""Command-line interface: run any paper experiment from the shell.

Examples::

    python -m repro list
    python -m repro fig1
    python -m repro fig7 --scale-lu 1/64 --scale-dmine 1/16
    python -m repro fig8 --scale 1/128 --iters 3
    python -m repro all --quick
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction
from typing import Callable


def _scale(text: str) -> float:
    """Parse '1/64', '0.015625' or '1' into a float scale."""
    return float(Fraction(text))


def cmd_fig1(args) -> None:
    from repro.exp import sec2
    print(sec2.format_fig1(sec2.run_fig1(days=args.days)))


def cmd_table1(args) -> None:
    from repro.exp import sec2
    print(sec2.format_table1(sec2.run_table1(days=args.days)))


def cmd_fig2(args) -> None:
    from repro.exp import sec2
    print(sec2.format_fig2(sec2.run_fig2(days=args.days)))


def cmd_disk(args) -> None:
    from repro.exp import disk_cal
    print(disk_cal.format_disk_calibration(
        disk_cal.run_disk_calibration()))


def cmd_fig7(args) -> None:
    from repro.exp import fig7
    print(fig7.format_fig7(fig7.run_fig7(
        scale_lu=args.scale_lu, scale_dmine=args.scale_dmine)))


def cmd_fig8(args) -> None:
    from repro.exp import fig8
    print(fig8.format_fig8(fig8.run_fig8(scale=args.scale,
                                         num_iter=args.iters)))


def cmd_nondedicated(args) -> None:
    from repro.exp import nondedicated as nd
    print(nd.format_nondedicated(nd.run_nondedicated(
        nd.NonDedicatedParams(num_iter=args.iters))))


def cmd_ablations(args) -> None:
    from repro.exp import ablations as ab
    print(ab.format_allocator_ablation(ab.run_allocator_ablation()))
    print()
    print(ab.format_refraction_ablation(
        ab.run_refraction_ablation(scale=args.scale)))
    print()
    print(ab.format_policy_ablation(ab.run_policy_ablation(
        scale=args.scale)))
    print()
    print(ab.format_pregrant_ablation(ab.run_pregrant_ablation()))


def cmd_all(args) -> None:
    import subprocess
    cmd = [sys.executable, "examples/reproduce_paper.py"]
    if args.quick:
        cmd.append("--quick")
    raise SystemExit(subprocess.call(cmd))


COMMANDS: dict[str, tuple[str, Callable]] = {
    "fig1": ("Figure 1: cluster memory availability", cmd_fig1),
    "table1": ("Table 1: memory by use per host class", cmd_table1),
    "fig2": ("Figure 2: per-workstation variation", cmd_fig2),
    "disk": ("Section 5.1 disk bandwidth table", cmd_disk),
    "fig7": ("Figure 7: lu and dmine speedups", cmd_fig7),
    "fig8": ("Figure 8: synthetic benchmark panels", cmd_fig8),
    "nondedicated": ("Section 5.3.1 desktop-cluster run", cmd_nondedicated),
    "ablations": ("design-choice ablations", cmd_ablations),
    "all": ("everything (examples/reproduce_paper.py)", cmd_all),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command")

    listp = sub.add_parser("list", help="list available experiments")
    listp.set_defaults(func=None)

    for name, (help_text, func) in COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        p.set_defaults(func=func)
        if name in ("fig1", "table1", "fig2"):
            p.add_argument("--days", type=float, default=4.0,
                           help="simulated trace length in days")
        if name == "fig7":
            p.add_argument("--scale-lu", type=_scale, default=1 / 64)
            p.add_argument("--scale-dmine", type=_scale, default=1 / 16)
        if name == "fig8":
            p.add_argument("--scale", type=_scale, default=1 / 64)
            p.add_argument("--iters", type=int, default=4)
        if name == "nondedicated":
            p.add_argument("--iters", type=int, default=4)
        if name == "ablations":
            p.add_argument("--scale", type=_scale, default=1 / 128)
        if name == "all":
            p.add_argument("--quick", action="store_true")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None or args.command == "list":
        print("available experiments:")
        for name, (help_text, _) in COMMANDS.items():
            print(f"  {name:14s} {help_text}")
        return 0
    args.func(args)
    return 0
