"""A small request/response layer over the datagram sockets.

Dodo's control plane — allocation requests from the runtime library to the
central manager, alloc/free forwarding to the idle memory daemons,
keep-alive echoes — is request/response over UDP-like sockets.  This module
provides exactly that: retried, id-matched calls with timeouts, and a
server loop with duplicate suppression (retries may deliver a request
twice; the server replays the cached reply instead of re-executing, which
matters for non-idempotent handlers like ``alloc``).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Callable, Optional

from repro.metrics.recorder import Recorder
from repro.net.usocket import USocket

#: wire size charged for an RPC datagram beyond the explicit arg sizes
RPC_HEADER_SIZE = 48


class RpcTimeout(Exception):
    """The peer never answered within the retry budget."""


class RpcRemoteError(Exception):
    """The handler on the peer raised; carries the remote error string."""


class RpcClient:
    """Issues calls from one socket; one outstanding call at a time.

    The Dodo runtime library is synchronous (Section 3), so a single
    outstanding call per socket matches the paper's design.  Components
    that need concurrent calls (the central manager talking to many imds)
    create one client per conversation.
    """

    def __init__(self, sock: USocket):
        self.sock = sock
        self.sim = sock.sim
        self._ids = itertools.count(1)
        self.stats = Recorder(f"rpc.client.{sock.endpoint.addr}:{sock.port}")

    def call(self, dst: tuple[str, int], method: str,
             args: Optional[dict] = None, *, timeout: float = 0.05,
             retries: int = 5, size: int = 0, backoff_s: float = 0.0,
             backoff_jitter: float = 0.0):
        """Generator process body: ``result = yield from client.call(...)``.

        ``size`` is extra payload bytes beyond the RPC header (for calls
        that carry data inline).  Raises :class:`RpcTimeout` after
        ``retries`` unanswered attempts and :class:`RpcRemoteError` if the
        remote handler failed.

        ``backoff_s`` > 0 adds exponential backoff between attempts:
        retry ``n`` waits ``backoff_s * 2**(n-1)`` on top of its timeout,
        stretched by up to ``backoff_jitter`` (fraction, drawn from the
        seeded ``rpc.backoff`` stream so runs stay deterministic).  Off by
        default: the paper-calibrated experiments use fixed-interval
        retries, and chaos runs opt in to avoid retry storms against
        restarting daemons.
        """
        call_id = next(self._ids)
        request = {"kind": "rpc_req", "id": call_id, "method": method,
                   "args": args or {}}
        tracer = self.sim.tracer
        span = tracer.begin(
            self.sim, f"rpc.{method}", "rpc",
            {"dst": f"{dst[0]}:{dst[1]}", "id": call_id}) \
            if tracer.enabled else None
        if span is not None:
            # ride the causal link on the request so the server-side
            # handler span becomes this span's child (pure metadata: the
            # charged wire size does not depend on the payload dict)
            request["trace"] = span.span_id
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.rpc_begin(self.sim)
        try:
            for _attempt in range(retries):
                if _attempt and backoff_s > 0.0:
                    delay = backoff_s * (2.0 ** (_attempt - 1))
                    if backoff_jitter > 0.0:
                        delay *= 1.0 + backoff_jitter \
                            * float(self.sim.rng("rpc.backoff").random())
                    self.stats.add("calls.backoff")
                    self.stats.sample("backoff_s", delay)
                    yield self.sim.timeout(delay)
                self.stats.add("calls.sent")
                if span is not None and _attempt:
                    tracer.instant(self.sim, f"rpc.retry.{method}", "rpc",
                                   {"attempt": _attempt + 1, "id": call_id})
                yield self.sock.send(RPC_HEADER_SIZE + size, payload=request,
                                     dst=dst)
                deadline = self.sim.now + timeout
                while True:
                    remaining = deadline - self.sim.now
                    if remaining <= 0:
                        break
                    reply = yield self.sock.recv(timeout=remaining)
                    if reply is None:
                        break
                    msg = reply.payload
                    if not isinstance(msg, dict) \
                            or msg.get("kind") != "rpc_rep":
                        continue
                    if msg.get("id") != call_id:
                        continue  # stale reply from a retried earlier call
                    if "error" in msg:
                        raise RpcRemoteError(msg["error"])
                    self.stats.add("calls.ok")
                    if span is not None:
                        span.tag("attempts", _attempt + 1)
                    return msg.get("result")
                self.stats.add("calls.retried")
            self.stats.add("calls.timeout")
            if span is not None:
                span.tag("timeout", True)
            raise RpcTimeout(
                f"{method} to {dst}: no reply after {retries} tries")
        finally:
            if telemetry.enabled:
                telemetry.rpc_end(self.sim)
            tracer.end(self.sim, span)


class RpcServer:
    """Dispatches incoming requests on a socket to named handlers.

    Handlers are callables ``handler(args: dict, src: (addr, port))``; they
    may be plain functions returning a result dict or generators (run as
    subprocesses, free to do I/O).  Raising inside a handler produces an
    error reply, not a server crash.
    """

    #: replies remembered for duplicate-request suppression
    DEDUP_CACHE = 128

    def __init__(self, sock: USocket, handlers: dict[str, Callable],
                 name: str = "rpc", component: Optional[str] = None):
        self.sock = sock
        self.sim = sock.sim
        self.handlers = dict(handlers)
        self.name = name
        #: trace component label; daemons pass their layer name
        #: ("manager", "imd", ...) so breakdowns attribute handler time
        #: to the right row.  Defaults to the name's first dotted part.
        self.component = component or name.split(".", 1)[0]
        self.stats = Recorder(f"rpc.server.{name}")
        self._seen: OrderedDict[tuple, dict] = OrderedDict()
        self._proc = None

    def start(self):
        if self._proc is not None:
            raise RuntimeError(f"server {self.name} already started")
        self._proc = self.sim.process(self._loop())
        return self._proc

    def stop(self) -> None:
        """Close the socket; the loop exits after draining."""
        self.sock.close()

    def _loop(self):
        while True:
            if self.sock.closed:
                return  # stopped before/while the loop was scheduled
            dgram = yield self.sock.recv()
            if dgram is None:
                return  # socket closed
            msg = dgram.payload
            if not isinstance(msg, dict) or msg.get("kind") != "rpc_req":
                self.stats.add("bad_requests")
                continue
            # Each request is served in its own process so a slow handler
            # (e.g. one doing a bulk transfer) does not block the server.
            self.sim.process(self._serve(msg, (dgram.src, dgram.sport)))

    def _serve(self, msg: dict, src: tuple[str, int]):
        key = (src, msg["id"])
        if key in self._seen:
            cached = self._seen[key]
            self.stats.add("duplicates")
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    self.sim, f"serve.duplicate.{msg['method']}",
                    self.component, {"id": msg["id"],
                                     "replayed": cached is not None})
            if cached is None:
                # Original request still executing: drop the retry; the
                # client's next retry will find the cached reply.
                return
            yield self.sock.send(RPC_HEADER_SIZE, payload=cached, dst=src)
            return
        self._seen[key] = None  # mark in-flight
        handler = self.handlers.get(msg["method"])
        reply = {"kind": "rpc_rep", "id": msg["id"]}
        tracer = self.sim.tracer
        span = tracer.begin(
            self.sim, f"serve.{msg['method']}", self.component,
            {"src": f"{src[0]}:{src[1]}", "id": msg["id"]}) \
            if tracer.enabled else None
        if span is not None and msg.get("trace"):
            span.parent_id = msg["trace"]  # wire-carried causal link
        try:
            if handler is None:
                reply["error"] = f"no such method: {msg['method']}"
            else:
                try:
                    result = handler(msg.get("args", {}), src)
                    if hasattr(result, "send"):  # generator handler
                        result = yield self.sim.process(result)
                    reply["result"] = result
                    self.stats.add("served")
                except Exception as exc:  # noqa: BLE001 - reported to caller
                    reply["error"] = f"{type(exc).__name__}: {exc}"
                    self.stats.add("handler_errors")
            self._seen[key] = reply
            while len(self._seen) > self.DEDUP_CACHE:
                self._seen.popitem(last=False)
            if not self.sock.closed:
                yield self.sock.send(RPC_HEADER_SIZE, payload=reply, dst=src)
        finally:
            tracer.end(self.sim, span,
                       {"error": True} if "error" in reply else None)
