"""``libusocket.a`` — the UDP-socket-like API of the paper (Figure 6).

The paper implemented a library giving UDP-socket semantics on top of
U-Net so the rest of Dodo is transport-agnostic.  We reproduce that:
:class:`TransportEndpoint` binds a parameter set (UDP or U-Net) to a host
NIC, and :class:`USocket` provides ``send``/``recv`` with receive-buffer
accounting, timeouts and iovec-style scatter/gather.  The paper-named
free functions (``u_socket``, ``u_send`` ...) are provided as thin wrappers
in :mod:`repro.net.api` for interface fidelity.

Semantics preserved from UDP: sends are fire-and-forget (the send event
completes when the datagram is handed to the NIC, after the sender-side
CPU overhead); a datagram that arrives to a full receive buffer or an
unbound port is silently dropped.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional, Sequence

from repro.metrics.recorder import Recorder
from repro.net.packet import Chunk, Datagram
from repro.net.params import TransportParams
from repro.sim import AnyOf, Event, Simulator, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network
    from repro.net.nic import NIC

#: first port handed out by the ephemeral allocator
EPHEMERAL_BASE = 32768


class SocketClosed(Exception):
    """Raised when operating on a closed socket."""


class TransportEndpoint:
    """One transport (UDP or U-Net) attached to one host's NIC."""

    def __init__(self, sim: Simulator, nic: "NIC", network: "Network",
                 params: TransportParams):
        self.sim = sim
        self.nic = nic
        self.network = network
        self.params = params
        self._ports: dict[int, "USocket"] = {}
        self._ephemeral = itertools.count(EPHEMERAL_BASE)
        nic.register_endpoint(self)

    @property
    def addr(self) -> str:
        return self.nic.addr

    def socket(self, port: Optional[int] = None, recvbuf: int = 256 * 1024,
               sendbuf: int = 256 * 1024) -> "USocket":
        """Create and bind a socket; ``port=None`` picks an ephemeral one."""
        if port is None:
            port = next(self._ephemeral)
            while port in self._ports:
                port = next(self._ephemeral)
        if port in self._ports:
            raise ValueError(f"port {port} already bound on {self.addr}")
        sock = USocket(self, port, recvbuf=recvbuf, sendbuf=sendbuf)
        self._ports[port] = sock
        return sock

    def socket_for_port(self, port: int) -> Optional["USocket"]:
        return self._ports.get(port)

    def _unbind(self, port: int) -> None:
        self._ports.pop(port, None)


class USocket:
    """A datagram socket with buffer limits, timeouts and burst sends."""

    def __init__(self, endpoint: TransportEndpoint, port: int,
                 recvbuf: int, sendbuf: int):
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self.port = port
        self.recvbuf = recvbuf
        self.sendbuf = sendbuf
        self.default_dst: Optional[tuple[str, int]] = None
        self.closed = False
        self._queue: Store = Store(self.sim)
        self._queued_bytes = 0
        self._pending_recvs = 0
        #: set by recv_bulk while waiting for a transfer ("pregranted" /
        #: "handshake"); lets a fast-path sender verify the receiver is
        #: parked on this socket in the matching mode before engaging
        self._bulk_wait_mode: Optional[str] = None
        #: the receiver-side ack timeout recv_bulk is running with
        self._bulk_ack_timeout: Optional[float] = None
        #: absolute time at which recv_bulk's first_timeout expires (None
        #: when it waits forever); the fast path refuses to engage if the
        #: transfer would latch after this instant
        self._bulk_wait_deadline: Optional[float] = None
        self.stats = Recorder(f"sock.{endpoint.addr}:{port}")

    # -- connection-style convenience -----------------------------------------
    def connect(self, dst_addr: str, dst_port: int) -> None:
        """Set the default destination (paper: ``u_connect``)."""
        self.default_dst = (dst_addr, dst_port)

    # -- sending -----------------------------------------------------------------
    def send(self, size: int, payload=None,
             dst: Optional[tuple[str, int]] = None,
             chunks: Sequence[Chunk] = ()) -> Event:
        """Send one datagram (or one burst); see module docstring.

        Returns an event that fires — after the sender-side CPU overhead —
        with the number of payload bytes handed to the NIC.  Raises
        ``ValueError`` for payloads beyond the transport's max (except for
        bursts, whose individual chunks must each fit).
        """
        if self.closed:
            raise SocketClosed(f"send on closed socket {self.port}")
        target = dst or self.default_dst
        if target is None:
            raise ValueError("no destination: connect() first or pass dst=")
        params = self.endpoint.params
        if chunks:
            for c in chunks:
                if c.size > params.max_payload:
                    raise ValueError(
                        f"chunk {c.seq} ({c.size} B) exceeds {params.name} "
                        f"max payload {params.max_payload}")
        elif size > params.max_payload:
            raise ValueError(
                f"datagram of {size} B exceeds {params.name} max payload "
                f"{params.max_payload}")
        dgram = Datagram(
            src=self.endpoint.addr, sport=self.port,
            dst=target[0], dport=target[1],
            size=size, transport=params.name, payload=payload,
            chunks=tuple(chunks))
        self.stats.add("tx.datagrams", dgram.count)
        self.stats.add("tx.bytes", size)
        # Single uncontended datagrams take the flow-level fast path:
        # same virtual timing, ~5 plain events instead of ~13 events
        # across three processes (see Network.fast_transmit).
        fast = self.endpoint.network.fast_transmit(dgram, params)
        if fast is not None:
            return fast
        return self.sim.process(self._send_proc(dgram, params))

    def send_iovec(self, iov: Sequence[bytes],
                   dst: Optional[tuple[str, int]] = None) -> Event:
        """Scatter-gather send (paper: ``u_send_iovec``): one datagram whose
        payload is the concatenation of the iovec, without an intermediate
        copy charge (the real library used sendmsg/recvmsg for this)."""
        data = b"".join(iov)
        return self.send(len(data), payload=data, dst=dst)

    def _send_proc(self, dgram: Datagram, params: TransportParams):
        network = self.endpoint.network
        frames = network.burst_frames(dgram)
        cpu_total = params.cpu_time(dgram.size, frames, dgram.count,
                                    params.send_overhead_s)
        if dgram.is_burst and dgram.count > 1:
            # A blast pipelines: the caller blocks only for the first
            # chunk's processing; the rest of the CPU work overlaps the
            # wire (it throttles the transmission if CPU is the
            # bottleneck — see Network.transmit's min_hold).
            first = dgram.chunks[0]
            cpu_first = min(cpu_total, params.cpu_time(
                first.size, network.frames_for(first.size), 1,
                params.send_overhead_s))
            residual = cpu_total - cpu_first
        else:
            cpu_first, residual = cpu_total, 0.0
        yield self.sim.timeout(cpu_first)
        network.transmit(dgram, params, min_hold=residual)
        return dgram.size

    # -- receiving -----------------------------------------------------------------
    def recv(self, timeout: Optional[float] = None) -> Event:
        """Event yielding the next :class:`Datagram`, or ``None`` on timeout
        or socket close (paper: ``u_recv`` takes an explicit timeout)."""
        if self.closed:
            raise SocketClosed(f"recv on closed socket {self.port}")
        queue = self._queue
        if queue._items:
            # Data already queued: resolve synchronously on the already-
            # triggered get event instead of spawning a process (the
            # caller still resumes at the current instant, exactly as on
            # the process path — the get fires on the next dispatch).
            get = queue.get()
            dgram = get._value
            if dgram is not None:
                self._queued_bytes -= dgram.size
                self.stats.add("rx.datagrams", dgram.count)
                self.stats.add("rx.bytes", dgram.size)
            return get
        self._pending_recvs += 1
        return self.sim.process(self._recv_proc(timeout))

    def _recv_proc(self, timeout: Optional[float]):
        get = self._queue.get()
        try:
            if timeout is None or get.triggered:
                # An already-queued datagram resolves the get immediately;
                # skip the timeout + AnyOf machinery (two events and a
                # callback fan-in) on this hot path.
                dgram = yield get
            else:
                idx, value = yield AnyOf(self.sim, [get, self.sim.timeout(timeout)])
                if idx != 0:
                    self._queue.cancel(get)
                    self.stats.add("rx.timeouts")
                    return None
                dgram = value
        finally:
            self._pending_recvs -= 1
        if dgram is None:  # close sentinel
            return None
        self._queued_bytes -= dgram.size
        self.stats.add("rx.datagrams", dgram.count)
        self.stats.add("rx.bytes", dgram.size)
        return dgram

    def _enqueue(self, dgram: Datagram) -> None:
        """Called by the NIC demux with an arriving datagram."""
        if self.closed:
            self.stats.add("rx.dropped.closed")
            return
        if self._queued_bytes + dgram.size > self.recvbuf:
            self.stats.add("rx.dropped.buffer_full")
            return
        self._queued_bytes += dgram.size
        self._queue.put(dgram)

    # -- lifecycle -----------------------------------------------------------------
    def close(self) -> None:
        """Unbind the port; pending recvs complete with ``None``."""
        if self.closed:
            return
        self.closed = True
        self.endpoint._unbind(self.port)
        for _ in range(self._pending_recvs):
            self._queue.put(None)
