"""The bulk data transfer protocol of Section 4.4.

Memory regions can be arbitrarily large and do not fit in individual
packets (~1.5 KB for U-Net, 64 KB for UDP), so Dodo runs its own blast
protocol on top of the datagram layer:

* the region is partitioned into sequence-numbered chunks of the
  transport's maximum payload;
* the sender *negotiates the amount of space available at the receiver*
  (the receive-buffer grant), then *blasts* as many chunks as fit in that
  space and waits;
* when the transfer is set up by an RPC exchange — every mread/mwrite is —
  the receiver's grant rides on that exchange (the mread client IS the
  receiver and states its buffer in the read request; the mwrite reply
  carries the imd's), so no extra negotiation round-trip is paid: pass
  ``window=`` to both ends.  The standalone offer/window handshake remains
  for transfers without a prior control exchange;
* the receiver waits for that number of chunks or a timeout; on timeout it
  identifies the missing chunks by sequence number and sends a **selective
  NACK** listing them; the sender retransmits exactly those;
* duplicate chunks are dropped by sequence number (the paper's footnote 5).

Control-message loss is handled with probe/retry: every control exchange
is retried up to ``max_attempts`` times, and a sender that misses an ACK
probes the receiver instead of re-blasting data.

Each transfer runs on a dedicated ephemeral socket pair, which is how the
runtime library and the idle memory daemons use it.

Flow-level fast path
--------------------

On the common lossless, uncontended configuration the packet-by-packet
simulation spends all its wall-clock time proving that nothing interesting
happened: no chunk is lost, no NACK fires, no engine is contended.  When a
transfer's conditions make it analytically tractable — zero
``frame_loss_prob`` on both endpoints, both NICs up, the receiver parked
on its socket in the matching wait mode, and no competing bulk transfer or
engine holder on either host — the sender computes the whole blast
schedule in closed form from the same :class:`~repro.net.params.LinkParams`
/ :class:`~repro.net.params.TransportParams` cost model the packet path
uses, replaying the exact sequence of float additions the event loop would
perform, and completes the transfer with O(1) simulator events instead of
O(chunks).  The receiver gets one synthetic ``bulk_fast`` datagram at the
exact virtual time it would have latched the transfer, sleeps to the exact
completion time (scheduled with :meth:`Simulator.at` so no float drift
creeps in), and returns the same bytes.

The plan *validates* itself: any blast whose arrival would not strictly
beat the receiver's NACK deadline, any ACK that would not strictly beat
the sender's probe deadline, any blast that would overflow the receive
buffer — and the planner refuses, falling back to the packet path.  Loss,
contention, a missing or mismatched receiver, or a downed NIC likewise
disengage it (``Network.bulk_active`` and the NIC engine states are
consulted at engage time).  Mid-transfer host failures are caught by the
abort event armed on the transfer's :class:`~repro.net.network.BulkToken`:
a NIC going down fires it, and both ends then emulate the packet path's
retry-exhaustion failure.  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Union

from repro.net.packet import Chunk, Datagram
from repro.net.usocket import USocket
from repro.sim import AnyOf

#: wire size charged for each control message (offer/window/ack/nack/probe)
CTRL_SIZE = 64

def _next_xfer_id(sim) -> int:
    """Per-simulation transfer id (ids only need to be unique per sim;
    a process-global counter would leak run ordering into traces)."""
    counter = getattr(sim, "_bulk_xfer_ids", None)
    if counter is None:
        counter = sim._bulk_xfer_ids = itertools.count(1)
    return next(counter)


class BulkError(Exception):
    """Transfer failed after exhausting retries (peer dead or unreachable)."""


@dataclass(frozen=True)
class BulkParams:
    """Tunables for one side of a bulk transfer."""

    #: receiver wait before NACKing an incomplete blast; also the sender's
    #: ACK wait before probing
    ack_timeout_s: float = 0.05
    #: attempts per control exchange before declaring the peer dead
    max_attempts: int = 8
    #: how long the receiver lingers after completion to answer probes
    #: whose ACK was lost
    linger_s: float = 0.1
    #: engage the flow-level fast path when a transfer qualifies (lossless,
    #: uncontended, receiver ready); never changes simulated timing — only
    #: how many events it takes to compute it
    fastpath: bool = True


DEFAULT_BULK = BulkParams()


def _nchunks_for(size: int, chunk_size: int) -> int:
    """Chunk count for ``size`` bytes (a zero-length transfer still moves
    one empty chunk through the handshake)."""
    if size <= 0:
        return 1
    return -(-size // chunk_size)


def _partition(size: int, data: Optional[Union[bytes, memoryview]],
               chunk_size: int) -> list[Chunk]:
    """Split ``size`` bytes into sequence-numbered chunks.

    Chunk payloads are zero-copy ``memoryview`` slices of ``data``; bytes
    are only materialized at reassembly on the receiver.
    """
    chunks = []
    view = None if data is None else memoryview(data)
    seq = 0
    off = 0
    while off < size:
        n = min(chunk_size, size - off)
        payload = None if view is None else view[off:off + n]
        chunks.append(Chunk(seq=seq, size=n, data=payload))
        seq += 1
        off += n
    if not chunks:  # zero-length transfer still needs the handshake
        chunks.append(Chunk(seq=0, size=0, data=b"" if data is not None else None))
    return chunks


# ---------------------------------------------------------------------------
# Flow-level fast path: closed-form timing
# ---------------------------------------------------------------------------

class _FastPlan:
    """The precomputed timeline of one analytically-completed transfer."""

    __slots__ = ("t_latch", "t_recv_done", "t_send_done", "nchunks")

    def __init__(self, t_latch: float, t_recv_done: float,
                 t_send_done: float, nchunks: int):
        self.t_latch = t_latch
        self.t_recv_done = t_recv_done
        self.t_send_done = t_send_done
        self.nchunks = nchunks


def _leg(link, p, size, frames, count, c0, f0, cl, fl):
    """Exact event-time deltas for one datagram (or burst) leg.

    Mirrors ``USocket._send_proc`` → ``Network._transmit`` →
    ``Network._rx_side`` float for float: the same cost-model methods are
    called with the same integer inputs, and the same intermediate sums
    are formed in the same order, so accumulating these deltas reproduces
    the packet path's event times bit-identically.

    Returns ``(cpu_first, switch_first, hold_rx, tail)``: the sender
    resumes ``cpu_first`` after initiating the send, and the datagram is
    delivered ``cpu_first + switch_first + hold_rx + tail`` after it
    (added one term at a time, exactly like the chained timeouts).
    """
    cpu_total = p.cpu_time(size, frames, count, p.send_overhead_s)
    if count > 1:
        cpu_first = min(cpu_total, p.cpu_time(c0, f0, 1, p.send_overhead_s))
        residual = cpu_total - cpu_first
    else:
        cpu_first, residual = cpu_total, 0.0
    wire = link.wire_time(size, frames)
    hold = max(wire, residual)
    switch_first = link.switch_latency_s + link.frame_time(
        min(size, link.mtu_bytes - 28))
    cpu_total_r = p.cpu_time(size, frames, count, p.recv_overhead_s)
    if count > 1:
        tail = min(cpu_total_r, p.cpu_time(cl, fl, 1, p.recv_overhead_s))
        hold_rx = max(hold, cpu_total_r - tail)
    else:
        tail = cpu_total_r
        hold_rx = hold
    return cpu_first, switch_first, hold_rx, tail


def _fast_clearance(sock: USocket, dst: tuple[str, int],
                    window: Optional[int],
                    params: BulkParams) -> Optional[USocket]:
    """Is this transfer analytically tractable *right now*?

    Returns the receiver's socket when every engage condition holds, None
    to fall back to the packet path.  Conditions: lossless transport on
    both ends, retry budget available, both NICs present and up with all
    four serialization engines idle, no other registered bulk transfer
    touching either host, clean socket queues on both ends, and a
    receiver parked in ``recv_bulk`` on the destination socket in the
    matching wait mode (pregranted windows must equal its recvbuf).
    """
    ep = sock.endpoint
    net = ep.network
    p = ep.params
    if p.frame_loss_prob > 0.0 or params.max_attempts < 1:
        return None
    if net.extra_loss_prob > 0.0:
        return None  # injected loss burst: the wire is not lossless
    if sock.closed or sock._queued_bytes or sock.recvbuf < CTRL_SIZE:
        return None
    src_nic = ep.nic
    dst_nic = net.host_nic(dst[0])
    if src_nic.down or dst_nic is None or dst_nic.down:
        return None
    if not net.reachable(ep.addr, dst[0]):
        return None  # partitioned: packets would never arrive
    dst_ep = dst_nic.endpoints.get(p.name)
    if dst_ep is None or dst_ep.params.frame_loss_prob > 0.0:
        return None
    dst_sock = dst_ep.socket_for_port(dst[1])
    if dst_sock is None or dst_sock.closed or dst_sock._queued_bytes:
        return None
    mode = dst_sock._bulk_wait_mode
    if window is None:
        if mode != "handshake":
            return None
    elif mode != "pregranted" or window != dst_sock.recvbuf:
        return None
    if not (src_nic.quiescent and dst_nic.quiescent):
        return None
    # This transfer already registered itself on both hosts, so a count
    # above one means somebody else's transfer is in flight there.  A
    # fast-path datagram in flight occupies an engine at a *future*
    # instant this plan cannot see, so it disqualifies the hosts too.
    for host in {ep.addr, dst[0]}:
        if net.bulk_active(host) != 1 or net.dgram_inflight(host):
            return None
    return dst_sock


def _plan_fast(sock: USocket, dst_sock: USocket, size: int,
               window: Optional[int],
               params: BulkParams) -> Optional[_FastPlan]:
    """Compute the transfer's full timeline in closed form, or refuse.

    Walks the blast schedule blast by blast (O(blasts) float arithmetic,
    zero simulator events), accumulating absolute event times from
    ``sim.now`` with the exact additions the packet path would perform.
    Refuses (returns None) whenever the lossless packet path would *not*
    be NACK/probe-free: a blast overflowing the receive buffer, an
    arrival not strictly beating the receiver's ack deadline, an ACK not
    strictly beating the sender's, or a latch that would miss the
    receiver's ``first_timeout``.  Ties lose to timeouts in the event
    heap, hence the strict comparisons.
    """
    ep = sock.endpoint
    link = ep.network.link
    p = ep.params
    rp = dst_sock.endpoint.params
    chunk_size = p.max_payload
    nchunks = _nchunks_for(size, chunk_size)
    c_tail = size - (nchunks - 1) * chunk_size if size > 0 else 0
    f_c = link.frames_for(chunk_size)
    f_tail = link.frames_for(c_tail)
    pregranted = window is not None
    window_bytes = window if pregranted else dst_sock.recvbuf
    per_blast = max(1, window_bytes // max(chunk_size, 1))
    recvbuf = dst_sock.recvbuf
    ack_to = params.ack_timeout_s
    r_ack_to = dst_sock._bulk_ack_timeout
    if r_ack_to is None:
        return None

    f_ctrl = link.frames_for(CTRL_SIZE)
    #: control legs: sender-initiated (offer/probe) use the sender's
    #: transport params, receiver-initiated (window/ack) the receiver's —
    #: Network._rx_side charges receiver CPU with the *initiator's* params
    ctrl_s = _leg(link, p, CTRL_SIZE, f_ctrl, 1, 0, 0, 0, 0)
    ctrl_r = _leg(link, rp, CTRL_SIZE, f_ctrl, 1, 0, 0, 0, 0)

    t = sock.sim.now
    t_latch = None
    r_wait_from = None  # when the receiver's current ack-timeout started
    if not pregranted:
        # offer (sender -> receiver), then window grant back
        d_send = t + ctrl_s[0]
        t_offer = ((d_send + ctrl_s[1]) + ctrl_s[2]) + ctrl_s[3]
        t_latch = t_offer
        tr = t_offer + ctrl_r[0]
        t_win = ((tr + ctrl_r[1]) + ctrl_r[2]) + ctrl_r[3]
        if not t_win < d_send + ack_to:
            return None
        t = t_win
        r_wait_from = tr

    full_leg = None  # cached: every non-final blast has the same shape
    tr = None
    blast_start = 0
    while blast_start < nchunks:
        k = min(per_blast, nchunks - blast_start)
        if blast_start + k == nchunks:
            blast_bytes = (k - 1) * chunk_size + c_tail
            frames = (k - 1) * f_c + f_tail
            c0 = chunk_size if k > 1 else c_tail
            f0 = f_c if k > 1 else f_tail
            leg = _leg(link, p, blast_bytes, frames, k, c0, f0,
                       c_tail, f_tail)
        else:
            if full_leg is None:
                blast_bytes = k * chunk_size
                if blast_bytes > recvbuf:
                    return None
                full_leg = _leg(link, p, blast_bytes, k * f_c, k,
                                chunk_size, f_c, chunk_size, f_c)
            leg = full_leg
            blast_bytes = k * chunk_size
        if blast_bytes > recvbuf:
            return None
        d_send = t + leg[0]
        arrival = ((d_send + leg[1]) + leg[2]) + leg[3]
        if r_wait_from is not None and not arrival < r_wait_from + r_ack_to:
            return None
        if t_latch is None:
            t_latch = arrival
        # the receiver ACKs the completed blast and resumes after its
        # control-send CPU charge; the ACK lands back at the sender
        tr = arrival + ctrl_r[0]
        t_ack = ((tr + ctrl_r[1]) + ctrl_r[2]) + ctrl_r[3]
        if not t_ack < d_send + ack_to:
            return None
        t = t_ack
        r_wait_from = tr
        blast_start += k

    deadline = dst_sock._bulk_wait_deadline
    if deadline is not None and not t_latch < deadline:
        return None  # receiver would have given up before we latch
    return _FastPlan(t_latch, tr, t, nchunks)


def _fast_deliver(sim, net, dst_sock: USocket, dgram: Datagram,
                  t_latch: float, abort):
    """Detached process: land the synthetic ``bulk_fast`` datagram on the
    receiver at the exact virtual time the packet path would have latched
    the transfer — unless the transfer aborted or the receiver vanished."""
    yield sim.at(t_latch)
    if abort.triggered or dst_sock.closed:
        return
    nic = net.host_nic(dgram.dst)
    if nic is None or nic.down:
        return
    dst_sock._enqueue(dgram)


def _send_bulk_fast(sock, dst, size, data, params, xfer, plan, dst_sock,
                    token):
    sim = sock.sim
    ep = sock.endpoint
    net = ep.network
    abort = net.fast_arm(token)
    net.stats.add("fastpath.transfers")
    net.stats.add("fastpath.bytes", size)
    if sim.eventlog.enabled:
        sim.eventlog.debug(sim, "net", "fastpath.engage", host=ep.addr,
                           dst=dst[0], bytes=size)
    # data-plane parity for the socket counters (control messages and
    # per-frame network counters are not simulated on the fast path)
    sock.stats.add("tx.datagrams", plan.nchunks)
    sock.stats.add("tx.bytes", size)
    dgram = Datagram(
        src=ep.addr, sport=sock.port, dst=dst[0], dport=dst[1],
        size=0, transport=ep.params.name,
        payload={"kind": "bulk_fast", "xfer": xfer, "total": size,
                 "nchunks": plan.nchunks, "t_done": plan.t_recv_done,
                 "abort": abort, "data": data})
    sim.process(_fast_deliver(sim, net, dst_sock, dgram, plan.t_latch,
                              abort))
    done = sim.at(plan.t_send_done)
    idx, _ = yield AnyOf(sim, [done, abort])
    if idx != 0:
        # A NIC on either end went down mid-flight: emulate the packet
        # path's death, which burns the retry budget probing before it
        # gives up.
        yield sim.timeout(params.max_attempts * params.ack_timeout_s)
        raise BulkError(
            f"xfer {xfer}: transfer to {dst} aborted (host down)")
    return size


def _recv_bulk_fast(sock, first: Datagram, params, close_socket, span):
    sim = sock.sim
    msg = first.payload
    xfer, total = msg["xfer"], msg["total"]
    sender = (first.src, first.sport)
    if span is not None:
        span.tag("xfer", xfer)
        span.tag("bytes", total)
        span.tag("mode", "fast")
    sock.stats.add("rx.datagrams", msg["nchunks"] - 1)
    sock.stats.add("rx.bytes", total)
    done = sim.at(msg["t_done"])
    abort = msg.get("abort")
    idx, _ = yield AnyOf(sim, [done, abort] if abort is not None else [done])
    if idx != 0:
        # Sender's host died mid-flight: the packet path would NACK into
        # the void until its retry budget ran out, then give up.
        yield sim.timeout(params.max_attempts * params.ack_timeout_s)
        return None
    sim.process(_fast_linger(sock, params, close_socket))
    raw = msg["data"]
    data = None if raw is None else \
        (raw if type(raw) is bytes else bytes(raw))
    return data, total, sender


def _fast_linger(sock: USocket, params: BulkParams, close_socket: bool):
    """Fast-path linger: nothing can arrive (the sender is analytic), so
    just hold the socket open for the linger window before closing."""
    yield sock.sim.timeout(params.linger_s)
    if close_socket:
        sock.close()


# ---------------------------------------------------------------------------
# Sender
# ---------------------------------------------------------------------------

def send_bulk(sock: USocket, dst: tuple[str, int], size: int,
              data: Optional[Union[bytes, memoryview]] = None,
              params: BulkParams = DEFAULT_BULK,
              window: Optional[int] = None):
    """Generator process: push ``size`` bytes to ``dst`` via blast protocol.

    ``data=None`` runs in metadata-only mode (timing identical, no bytes
    carried).  ``window`` is a pre-granted receiver buffer (obtained on the
    RPC that set the transfer up); when None the offer/window handshake
    negotiates it.  Returns the number of bytes transferred; raises
    :class:`BulkError` if the receiver never responds.
    """
    sim = sock.sim
    xfer = _next_xfer_id(sim)
    chunk_size = sock.endpoint.params.max_payload
    nchunks = _nchunks_for(size, chunk_size)
    tracer = sim.tracer
    span = tracer.begin(sim, "bulk.send", "net",
                        {"xfer": xfer, "bytes": size, "chunks": nchunks,
                         "dst": f"{dst[0]}:{dst[1]}"}) \
        if tracer.enabled else None
    try:
        result = yield from _send_bulk(sock, dst, size, data, params,
                                       window, xfer, chunk_size, nchunks)
        return result
    finally:
        tracer.end(sim, span)


def _send_bulk(sock, dst, size, data, params, window, xfer, chunk_size,
               nchunks):
    sim = sock.sim
    net = sock.endpoint.network
    token = net.bulk_begin(sock.endpoint.addr, dst[0])
    try:
        if params.fastpath:
            # Zero-delay hop: lets a receiver spawned at this same instant
            # park on its socket before eligibility is judged (costs no
            # virtual time either way).
            yield sim.timeout(0.0)
            dst_sock = _fast_clearance(sock, dst, window, params)
            plan = None if dst_sock is None else \
                _plan_fast(sock, dst_sock, size, window, params)
            if plan is not None:
                result = yield from _send_bulk_fast(
                    sock, dst, size, data, params, xfer, plan, dst_sock,
                    token)
                return result
            net.stats.add("fastpath.fallbacks")
            if sim.eventlog.enabled:
                sim.eventlog.debug(sim, "net", "fastpath.fallback",
                                   host=sock.endpoint.addr, dst=dst[0],
                                   bytes=size)
        result = yield from _send_bulk_packet(
            sock, dst, size, data, params, window, xfer, chunk_size,
            nchunks)
        return result
    finally:
        net.bulk_end(token)


def _send_bulk_packet(sock, dst, size, data, params, window, xfer,
                      chunk_size, nchunks):
    sim = sock.sim
    chunks = _partition(size, data, chunk_size)
    #: transfer metadata rides on every data burst and probe so a
    #: pre-granted receiver can latch onto the transfer without an offer
    meta = {"xfer": xfer, "total": size, "nchunks": nchunks,
            "chunk_size": chunk_size}

    window_bytes = window
    if window_bytes is None:
        # -- negotiate the receiver's buffer space --------------------------
        for _ in range(params.max_attempts):
            yield sock.send(CTRL_SIZE, payload={
                "kind": "bulk_offer", **meta}, dst=dst)
            reply = yield sock.recv(timeout=params.ack_timeout_s)
            if reply is None:
                continue
            msg = reply.payload
            if isinstance(msg, dict) and msg.get("xfer") == xfer \
                    and msg.get("kind") == "bulk_window":
                window_bytes = msg["window"]
                break
        if window_bytes is None:
            raise BulkError(
                f"xfer {xfer}: receiver at {dst} granted no window")
    per_blast = max(1, window_bytes // max(chunk_size, 1))

    # -- blast loop ------------------------------------------------------------
    blast_start = 0
    while blast_start < nchunks:
        blast = chunks[blast_start:blast_start + per_blast]
        outstanding = blast
        acked = False
        for _attempt in range(params.max_attempts):
            if outstanding:
                yield sock.send(
                    sum(c.size for c in outstanding),
                    payload={"kind": "bulk_data", **meta},
                    chunks=outstanding, dst=dst)
            else:
                # Everything sent but ACK lost: probe instead of re-blasting.
                yield sock.send(CTRL_SIZE, payload={
                    "kind": "bulk_probe", "blast_start": blast_start,
                    **meta}, dst=dst)
            reply = yield sock.recv(timeout=params.ack_timeout_s)
            if reply is None:
                outstanding = []  # unknown state: probe next time
                continue
            msg = reply.payload
            if not isinstance(msg, dict) or msg.get("xfer") != xfer:
                continue
            if msg.get("kind") == "bulk_ack" \
                    and msg.get("blast_start") == blast_start:
                acked = True
                break
            if msg.get("kind") == "bulk_nack":
                missing = set(msg["missing"])
                outstanding = [c for c in blast if c.seq in missing]
        if not acked:
            raise BulkError(
                f"xfer {xfer}: no ACK for blast at {blast_start} from {dst}")
        blast_start += per_blast
    return size


# ---------------------------------------------------------------------------
# Receiver
# ---------------------------------------------------------------------------

def recv_bulk(sock: USocket, first_timeout: Optional[float] = None,
              params: BulkParams = DEFAULT_BULK, close_socket: bool = False,
              pregranted: bool = False):
    """Generator process: receive one bulk transfer on ``sock``.

    Waits up to ``first_timeout`` for the transfer to start (None =
    forever).  With ``pregranted=True`` the sender already knows this
    socket's receive buffer (it was carried on the RPC that set the
    transfer up) and blasts immediately; otherwise the offer/window
    handshake runs first.  Returns ``(data_or_None, size, (src, sport))``
    — data is assembled bytes when the sender ran in payload mode.
    Returns ``None`` if nothing arrived or the sender disappeared
    mid-transfer.

    The post-completion *linger* (answering probes whose final ACK was
    lost) runs as a detached process so the caller gets the data the
    moment it is complete; with ``close_socket=True`` the linger process
    closes the socket when it finishes.
    """
    sim = sock.sim
    tracer = sim.tracer
    span = tracer.begin(sim, "bulk.recv", "net") \
        if tracer.enabled else None
    # Advertise readiness so an eligible sender can engage the fast path;
    # mode stays None when this receiver opted out of it.
    if params.fastpath:
        sock._bulk_wait_mode = "pregranted" if pregranted else "handshake"
    sock._bulk_ack_timeout = params.ack_timeout_s
    sock._bulk_wait_deadline = None if first_timeout is None \
        else sim.now + first_timeout
    try:
        result = yield from _recv_bulk(sock, first_timeout, params,
                                       close_socket, pregranted, span)
        return result
    finally:
        sock._bulk_wait_mode = None
        sock._bulk_ack_timeout = None
        sock._bulk_wait_deadline = None
        tracer.end(sim, span)


def _recv_bulk(sock, first_timeout, params, close_socket, pregranted, span):
    sim = sock.sim

    # -- latch onto a transfer ----------------------------------------------------
    first = None
    wanted = {"bulk_data", "bulk_probe", "bulk_fast"} if pregranted \
        else {"bulk_offer", "bulk_fast"}
    while first is None:
        d = yield sock.recv(timeout=first_timeout)
        if d is None:
            return None
        msg = d.payload
        if isinstance(msg, dict) and msg.get("kind") in wanted:
            first = d
    msg = first.payload
    if msg["kind"] == "bulk_fast":
        result = yield from _recv_bulk_fast(sock, first, params,
                                            close_socket, span)
        return result
    xfer = msg["xfer"]
    total, nchunks = msg["total"], msg["nchunks"]
    chunk_size = msg["chunk_size"]
    sender = (first.src, first.sport)
    if span is not None:
        span.tag("xfer", xfer)
        span.tag("bytes", total)
    window = sock.recvbuf
    per_blast = max(1, window // max(chunk_size, 1))

    def grant():
        return sock.send(CTRL_SIZE, payload={
            "kind": "bulk_window", "xfer": xfer, "window": window},
            dst=sender)

    received: dict[int, Chunk] = {}
    if pregranted:
        # the first message is already part of the data flow: process it
        if msg["kind"] == "bulk_data":
            for chunk in first.delivered_chunks():
                received.setdefault(chunk.seq, chunk)
        else:  # a probe for a blast that was lost entirely
            start = msg["blast_start"]
            exp = set(range(start, min(start + per_blast, nchunks)))
            yield sock.send(CTRL_SIZE, payload={
                "kind": "bulk_nack", "xfer": xfer,
                "missing": sorted(exp)}, dst=sender)
    else:
        yield grant()

    blast_start = 0
    while blast_start < nchunks:
        blast_end = min(blast_start + per_blast, nchunks)
        # One set difference per blast; each arriving chunk then costs a
        # single discard instead of a full issubset/key-view rebuild.
        missing = set(range(blast_start, blast_end))
        missing.difference_update(received)
        attempts = 0
        while missing:
            d = yield sock.recv(timeout=params.ack_timeout_s)
            if d is None:
                if sock.closed:
                    # the caller cancelled the transfer (closed the
                    # socket under us): drain out, don't NACK into it
                    return None
                # Timeout: selective NACK for what is still missing.
                attempts += 1
                if attempts > params.max_attempts:
                    return None
                if sim.tracer.enabled:
                    sim.tracer.instant(sim, "bulk.nack", "net",
                                       {"xfer": xfer,
                                        "missing": len(missing)})
                yield sock.send(CTRL_SIZE, payload={
                    "kind": "bulk_nack", "xfer": xfer,
                    "missing": sorted(missing)}, dst=sender)
                continue
            m = d.payload
            if not isinstance(m, dict) or m.get("xfer") != xfer:
                continue
            kind = m.get("kind")
            if kind == "bulk_offer":
                yield grant()  # our window reply was lost
            elif kind == "bulk_data":
                attempts = 0
                for chunk in d.delivered_chunks():
                    seq = chunk.seq
                    if seq not in received:  # dedup by seq
                        received[seq] = chunk
                        missing.discard(seq)
            elif kind == "bulk_probe":
                start = m["blast_start"]
                if start == blast_start:
                    still = sorted(missing)
                else:
                    exp = range(start, min(start + per_blast, nchunks))
                    still = [s for s in exp if s not in received]
                if still:
                    yield sock.send(CTRL_SIZE, payload={
                        "kind": "bulk_nack", "xfer": xfer,
                        "missing": still}, dst=sender)
                else:
                    yield sock.send(CTRL_SIZE, payload={
                        "kind": "bulk_ack", "xfer": xfer,
                        "blast_start": start}, dst=sender)
        yield sock.send(CTRL_SIZE, payload={
            "kind": "bulk_ack", "xfer": xfer,
            "blast_start": blast_start}, dst=sender)
        blast_start += per_blast

    # -- linger to answer probes whose final ACK was lost ---------------------
    sim.process(_linger(sock, xfer, sender, per_blast, nchunks,
                        params, close_socket))

    if any(c.data is None for c in received.values()):
        data = None
    else:
        data = b"".join(received[seq].data for seq in range(nchunks))
    return data, total, sender


def _linger(sock: USocket, xfer: int, sender: tuple[str, int],
            per_blast: int, nchunks: int, params: BulkParams,
            close_socket: bool):
    sim = sock.sim
    end = sim.now + params.linger_s
    while sim.now < end and not sock.closed:
        d = yield sock.recv(timeout=end - sim.now)
        if d is None:
            break
        m = d.payload
        if isinstance(m, dict) and m.get("xfer") == xfer \
                and m.get("kind") == "bulk_probe":
            yield sock.send(CTRL_SIZE, payload={
                "kind": "bulk_ack", "xfer": xfer,
                "blast_start": m["blast_start"]}, dst=sender)
    if close_socket:
        sock.close()
