"""The bulk data transfer protocol of Section 4.4.

Memory regions can be arbitrarily large and do not fit in individual
packets (~1.5 KB for U-Net, 64 KB for UDP), so Dodo runs its own blast
protocol on top of the datagram layer:

* the region is partitioned into sequence-numbered chunks of the
  transport's maximum payload;
* the sender *negotiates the amount of space available at the receiver*
  (the receive-buffer grant), then *blasts* as many chunks as fit in that
  space and waits;
* when the transfer is set up by an RPC exchange — every mread/mwrite is —
  the receiver's grant rides on that exchange (the mread client IS the
  receiver and states its buffer in the read request; the mwrite reply
  carries the imd's), so no extra negotiation round-trip is paid: pass
  ``window=`` to both ends.  The standalone offer/window handshake remains
  for transfers without a prior control exchange;
* the receiver waits for that number of chunks or a timeout; on timeout it
  identifies the missing chunks by sequence number and sends a **selective
  NACK** listing them; the sender retransmits exactly those;
* duplicate chunks are dropped by sequence number (the paper's footnote 5).

Control-message loss is handled with probe/retry: every control exchange
is retried up to ``max_attempts`` times, and a sender that misses an ACK
probes the receiver instead of re-blasting data.

Each transfer runs on a dedicated ephemeral socket pair, which is how the
runtime library and the idle memory daemons use it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.net.packet import Chunk
from repro.net.usocket import USocket

#: wire size charged for each control message (offer/window/ack/nack/probe)
CTRL_SIZE = 64

def _next_xfer_id(sim) -> int:
    """Per-simulation transfer id (ids only need to be unique per sim;
    a process-global counter would leak run ordering into traces)."""
    counter = getattr(sim, "_bulk_xfer_ids", None)
    if counter is None:
        counter = sim._bulk_xfer_ids = itertools.count(1)
    return next(counter)


class BulkError(Exception):
    """Transfer failed after exhausting retries (peer dead or unreachable)."""


@dataclass(frozen=True)
class BulkParams:
    """Tunables for one side of a bulk transfer."""

    #: receiver wait before NACKing an incomplete blast; also the sender's
    #: ACK wait before probing
    ack_timeout_s: float = 0.05
    #: attempts per control exchange before declaring the peer dead
    max_attempts: int = 8
    #: how long the receiver lingers after completion to answer probes
    #: whose ACK was lost
    linger_s: float = 0.1


DEFAULT_BULK = BulkParams()


def _partition(size: int, data: Optional[bytes], chunk_size: int) -> list[Chunk]:
    """Split ``size`` bytes into sequence-numbered chunks."""
    chunks = []
    seq = 0
    off = 0
    while off < size:
        n = min(chunk_size, size - off)
        payload = None if data is None else bytes(data[off:off + n])
        chunks.append(Chunk(seq=seq, size=n, data=payload))
        seq += 1
        off += n
    if not chunks:  # zero-length transfer still needs the handshake
        chunks.append(Chunk(seq=0, size=0, data=b"" if data is not None else None))
    return chunks


def send_bulk(sock: USocket, dst: tuple[str, int], size: int,
              data: Optional[bytes] = None,
              params: BulkParams = DEFAULT_BULK,
              window: Optional[int] = None):
    """Generator process: push ``size`` bytes to ``dst`` via blast protocol.

    ``data=None`` runs in metadata-only mode (timing identical, no bytes
    carried).  ``window`` is a pre-granted receiver buffer (obtained on the
    RPC that set the transfer up); when None the offer/window handshake
    negotiates it.  Returns the number of bytes transferred; raises
    :class:`BulkError` if the receiver never responds.
    """
    sim = sock.sim
    xfer = _next_xfer_id(sim)
    chunk_size = sock.endpoint.params.max_payload
    chunks = _partition(size, data, chunk_size)
    nchunks = len(chunks)
    tracer = sim.tracer
    span = tracer.begin(sim, "bulk.send", "net",
                        {"xfer": xfer, "bytes": size, "chunks": nchunks,
                         "dst": f"{dst[0]}:{dst[1]}"}) \
        if tracer.enabled else None
    try:
        result = yield from _send_bulk(sock, dst, size, params, window,
                                       xfer, chunk_size, chunks, nchunks)
        return result
    finally:
        tracer.end(sim, span)


def _send_bulk(sock, dst, size, params, window, xfer, chunk_size, chunks,
               nchunks):
    sim = sock.sim
    #: transfer metadata rides on every data burst and probe so a
    #: pre-granted receiver can latch onto the transfer without an offer
    meta = {"xfer": xfer, "total": size, "nchunks": nchunks,
            "chunk_size": chunk_size}

    window_bytes = window
    if window_bytes is None:
        # -- negotiate the receiver's buffer space --------------------------
        for _ in range(params.max_attempts):
            yield sock.send(CTRL_SIZE, payload={
                "kind": "bulk_offer", **meta}, dst=dst)
            reply = yield sock.recv(timeout=params.ack_timeout_s)
            if reply is None:
                continue
            msg = reply.payload
            if isinstance(msg, dict) and msg.get("xfer") == xfer \
                    and msg.get("kind") == "bulk_window":
                window_bytes = msg["window"]
                break
        if window_bytes is None:
            raise BulkError(
                f"xfer {xfer}: receiver at {dst} granted no window")
    per_blast = max(1, window_bytes // max(chunk_size, 1))

    # -- blast loop ------------------------------------------------------------
    blast_start = 0
    while blast_start < nchunks:
        blast = chunks[blast_start:blast_start + per_blast]
        outstanding = blast
        acked = False
        for _attempt in range(params.max_attempts):
            if outstanding:
                yield sock.send(
                    sum(c.size for c in outstanding),
                    payload={"kind": "bulk_data", **meta},
                    chunks=outstanding, dst=dst)
            else:
                # Everything sent but ACK lost: probe instead of re-blasting.
                yield sock.send(CTRL_SIZE, payload={
                    "kind": "bulk_probe", "blast_start": blast_start,
                    **meta}, dst=dst)
            reply = yield sock.recv(timeout=params.ack_timeout_s)
            if reply is None:
                outstanding = []  # unknown state: probe next time
                continue
            msg = reply.payload
            if not isinstance(msg, dict) or msg.get("xfer") != xfer:
                continue
            if msg.get("kind") == "bulk_ack" \
                    and msg.get("blast_start") == blast_start:
                acked = True
                break
            if msg.get("kind") == "bulk_nack":
                missing = set(msg["missing"])
                outstanding = [c for c in blast if c.seq in missing]
        if not acked:
            raise BulkError(
                f"xfer {xfer}: no ACK for blast at {blast_start} from {dst}")
        blast_start += per_blast
    return size


def recv_bulk(sock: USocket, first_timeout: Optional[float] = None,
              params: BulkParams = DEFAULT_BULK, close_socket: bool = False,
              pregranted: bool = False):
    """Generator process: receive one bulk transfer on ``sock``.

    Waits up to ``first_timeout`` for the transfer to start (None =
    forever).  With ``pregranted=True`` the sender already knows this
    socket's receive buffer (it was carried on the RPC that set the
    transfer up) and blasts immediately; otherwise the offer/window
    handshake runs first.  Returns ``(data_or_None, size, (src, sport))``
    — data is assembled bytes when the sender ran in payload mode.
    Returns ``None`` if nothing arrived or the sender disappeared
    mid-transfer.

    The post-completion *linger* (answering probes whose final ACK was
    lost) runs as a detached process so the caller gets the data the
    moment it is complete; with ``close_socket=True`` the linger process
    closes the socket when it finishes.
    """
    sim = sock.sim
    tracer = sim.tracer
    span = tracer.begin(sim, "bulk.recv", "net") \
        if tracer.enabled else None
    try:
        result = yield from _recv_bulk(sock, first_timeout, params,
                                       close_socket, pregranted, span)
        return result
    finally:
        tracer.end(sim, span)


def _recv_bulk(sock, first_timeout, params, close_socket, pregranted, span):
    sim = sock.sim

    # -- latch onto a transfer ----------------------------------------------------
    first = None
    wanted = {"bulk_data", "bulk_probe"} if pregranted else {"bulk_offer"}
    while first is None:
        d = yield sock.recv(timeout=first_timeout)
        if d is None:
            return None
        msg = d.payload
        if isinstance(msg, dict) and msg.get("kind") in wanted:
            first = d
    msg = first.payload
    xfer = msg["xfer"]
    total, nchunks = msg["total"], msg["nchunks"]
    chunk_size = msg["chunk_size"]
    sender = (first.src, first.sport)
    if span is not None:
        span.tag("xfer", xfer)
        span.tag("bytes", total)
    window = sock.recvbuf
    per_blast = max(1, window // max(chunk_size, 1))

    def grant():
        return sock.send(CTRL_SIZE, payload={
            "kind": "bulk_window", "xfer": xfer, "window": window},
            dst=sender)

    received: dict[int, Chunk] = {}
    if pregranted:
        # the first message is already part of the data flow: process it
        if msg["kind"] == "bulk_data":
            for chunk in first.delivered_chunks():
                received.setdefault(chunk.seq, chunk)
        else:  # a probe for a blast that was lost entirely
            start = msg["blast_start"]
            exp = set(range(start, min(start + per_blast, nchunks)))
            yield sock.send(CTRL_SIZE, payload={
                "kind": "bulk_nack", "xfer": xfer,
                "missing": sorted(exp)}, dst=sender)
    else:
        yield grant()

    blast_start = 0
    while blast_start < nchunks:
        expected = set(range(blast_start, min(blast_start + per_blast, nchunks)))
        attempts = 0
        while not expected.issubset(received.keys()):
            d = yield sock.recv(timeout=params.ack_timeout_s)
            if d is None:
                # Timeout: selective NACK for what is still missing.
                attempts += 1
                if attempts > params.max_attempts:
                    return None
                missing = sorted(expected - received.keys())
                if sim.tracer.enabled:
                    sim.tracer.instant(sim, "bulk.nack", "net",
                                       {"xfer": xfer,
                                        "missing": len(missing)})
                yield sock.send(CTRL_SIZE, payload={
                    "kind": "bulk_nack", "xfer": xfer,
                    "missing": missing}, dst=sender)
                continue
            m = d.payload
            if not isinstance(m, dict) or m.get("xfer") != xfer:
                continue
            kind = m.get("kind")
            if kind == "bulk_offer":
                yield grant()  # our window reply was lost
            elif kind == "bulk_data":
                attempts = 0
                for chunk in d.delivered_chunks():
                    received.setdefault(chunk.seq, chunk)  # dedup by seq
            elif kind == "bulk_probe":
                start = m["blast_start"]
                exp = set(range(start, min(start + per_blast, nchunks)))
                missing = sorted(exp - received.keys())
                if missing:
                    yield sock.send(CTRL_SIZE, payload={
                        "kind": "bulk_nack", "xfer": xfer,
                        "missing": missing}, dst=sender)
                else:
                    yield sock.send(CTRL_SIZE, payload={
                        "kind": "bulk_ack", "xfer": xfer,
                        "blast_start": start}, dst=sender)
        yield sock.send(CTRL_SIZE, payload={
            "kind": "bulk_ack", "xfer": xfer,
            "blast_start": blast_start}, dst=sender)
        blast_start += per_blast

    # -- linger to answer probes whose final ACK was lost ---------------------
    sim.process(_linger(sock, xfer, sender, per_blast, nchunks,
                        params, close_socket))

    if any(c.data is None for c in received.values()):
        data = None
    else:
        data = b"".join(received[seq].data for seq in range(nchunks))
    return data, total, sender


def _linger(sock: USocket, xfer: int, sender: tuple[str, int],
            per_blast: int, nchunks: int, params: BulkParams,
            close_socket: bool):
    sim = sock.sim
    end = sim.now + params.linger_s
    while sim.now < end and not sock.closed:
        d = yield sock.recv(timeout=end - sim.now)
        if d is None:
            break
        m = d.payload
        if isinstance(m, dict) and m.get("xfer") == xfer \
                and m.get("kind") == "bulk_probe":
            yield sock.send(CTRL_SIZE, payload={
                "kind": "bulk_ack", "xfer": xfer,
                "blast_start": m["blast_start"]}, dst=sender)
    if close_socket:
        sock.close()
