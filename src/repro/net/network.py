"""The switched-Ethernet fabric connecting all workstations.

Models the paper's 16-port BayStack 350: every host has a dedicated
full-duplex 100 Mb/s link to one store-and-forward switch.  A transmission

1. occupies the sender's TX engine for its full serialization time,
2. crosses the switch after ``switch_latency + first_frame_time`` (frames
   pipeline through the switch, so only the leading frame's store-and-
   forward delay is on the critical path),
3. occupies the receiver's RX engine for the serialization time (running
   concurrently with the sender's TX — this is where receiver-side
   contention between multiple senders appears),
4. suffers per-frame Bernoulli loss (burst datagrams lose individual
   chunks; single datagrams are dropped whole, matching IP fragmentation
   semantics where one lost fragment kills the datagram),
5. is charged the receiver's per-datagram CPU overhead and delivered to
   the NIC's port demux.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.recorder import Recorder
from repro.net.nic import NIC
from repro.net.packet import Datagram
from repro.net.params import LinkParams, TransportParams
from repro.sim import Event, Simulator


class BulkToken:
    """Registration of one in-flight bulk transfer (see ``bulk_begin``).

    ``abort`` is armed only by the flow-level fast path: it fires when a
    NIC on either end goes down mid-transfer, so an analytically-completed
    transfer can notice failures it no longer observes packet by packet.
    """

    __slots__ = ("hosts", "abort")

    def __init__(self, hosts: tuple[str, ...]):
        self.hosts = hosts
        self.abort = None


class Network:
    """The cluster switch plus all attached host links."""

    def __init__(self, sim: Simulator, link: LinkParams | None = None):
        self.sim = sim
        self.link = link or LinkParams()
        self._nics: dict[str, NIC] = {}
        self.stats = Recorder("network")
        self._loss_rng = sim.rng("net.loss")
        #: in-flight bulk transfers, for fast-path contention clearance
        self._bulk_tokens: list[BulkToken] = []
        self._bulk_counts: dict[str, int] = {}
        #: engage the flow-level datagram fast path (see fast_transmit);
        #: timing-identical to the packet path, False forces every
        #: datagram through the packet-by-packet simulation
        self.dgram_fastpath: bool = True
        #: hosts touched by in-flight fast-path datagrams; the bulk fast
        #: path consults these counts (its closed-form plan must not
        #: overlap a pending analytic RX occupancy it cannot see)
        self._dgram_inflight: dict[str, int] = {}
        #: fault injection: extra per-frame loss probability folded into
        #: every endpoint's own loss model (nemesis loss bursts)
        self.extra_loss_prob: float = 0.0
        #: fault injection: current partition as frozensets of host names;
        #: hosts in different groups cannot reach each other (hosts in no
        #: group form one implicit group).  None = fully connected.
        self._partition: Optional[list[frozenset]] = None
        if sim.telemetry.enabled:
            sim.telemetry.register(sim, "network", "network", self)

    def attach(self, nic: NIC) -> None:
        if nic.addr in self._nics:
            raise ValueError(f"host {nic.addr!r} already attached")
        self._nics[nic.addr] = nic
        nic.network = self

    def nic(self, addr: str) -> NIC:
        return self._nics[addr]

    def host_nic(self, addr: str) -> Optional[NIC]:
        """Like :meth:`nic` but returns None for unknown hosts."""
        return self._nics.get(addr)

    @property
    def hosts(self) -> list[str]:
        return list(self._nics)

    # -- bulk-transfer registry ------------------------------------------------
    # Every bulk transfer (packet or fast path) registers the hosts it
    # touches for its duration.  The fast path consults these counts to
    # detect competing transfers and falls back to the packet path when a
    # host is already busy; it also arms the token's abort event so a NIC
    # going down mid-flight cancels the analytic completion.

    def bulk_begin(self, src: str, dst: str) -> BulkToken:
        token = BulkToken((src,) if src == dst else (src, dst))
        counts = self._bulk_counts
        for h in token.hosts:
            counts[h] = counts.get(h, 0) + 1
        self._bulk_tokens.append(token)
        return token

    def bulk_end(self, token: BulkToken) -> None:
        counts = self._bulk_counts
        for h in token.hosts:
            counts[h] -= 1
        self._bulk_tokens.remove(token)

    def bulk_active(self, host: str) -> int:
        """Number of registered bulk transfers touching ``host``."""
        return self._bulk_counts.get(host, 0)

    def dgram_inflight(self, host: str) -> int:
        """Number of in-flight fast-path datagrams touching ``host``."""
        return self._dgram_inflight.get(host, 0)

    def fast_arm(self, token: BulkToken):
        """Arm (and return) the token's mid-transfer abort event."""
        if token.abort is None:
            token.abort = Event(self.sim)
        return token.abort

    def notify_nic_down(self, addr: str) -> None:
        """Called by a NIC's ``down`` setter: abort in-flight fast
        transfers that touch the failed host."""
        for token in self._bulk_tokens:
            if token.abort is not None and addr in token.hosts \
                    and not token.abort.triggered:
                token.abort.succeed()
                self.stats.add("fastpath.aborts")

    # -- fault injection -------------------------------------------------------
    def reachable(self, a: str, b: str) -> bool:
        """Can ``a`` currently reach ``b``?  True unless a partition puts
        them in different groups (absent hosts share an implicit group)."""
        if self._partition is None or a == b:
            return True
        ga = next((i for i, g in enumerate(self._partition) if a in g), None)
        gb = next((i for i, g in enumerate(self._partition) if b in g), None)
        return ga == gb

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def set_partition(self, groups) -> None:
        """Partition the switch into ``groups`` (iterables of host names).

        In-flight fast-path transfers whose endpoints land on different
        sides are aborted, exactly as when a NIC goes down: the analytic
        completion would otherwise never observe the cut.
        """
        self._partition = [frozenset(g) for g in groups]
        self.stats.add("partitions")
        for token in self._bulk_tokens:
            if token.abort is None or token.abort.triggered \
                    or len(token.hosts) != 2:
                continue
            if not self.reachable(token.hosts[0], token.hosts[1]):
                token.abort.succeed()
                self.stats.add("fastpath.aborts")

    def clear_partition(self) -> None:
        self._partition = None

    # -- framing -------------------------------------------------------------
    def frames_for(self, payload_bytes: int) -> int:
        """Ethernet frames needed for one datagram of ``payload_bytes``."""
        return self.link.frames_for(payload_bytes)

    def burst_frames(self, dgram: Datagram) -> int:
        if dgram.is_burst:
            return sum(self.frames_for(c.size) for c in dgram.chunks)
        return self.frames_for(dgram.size)

    # -- transmission ----------------------------------------------------------
    def transmit(self, dgram: Datagram, params: TransportParams,
                 min_hold: float = 0.0):
        """Start carrying ``dgram``; returns the transmission process.

        ``min_hold`` is residual sender CPU work that overlaps the wire
        (burst pipelining): the TX engine is held for
        ``max(wire_time, min_hold)``, so a CPU-bound sender throttles the
        transmission instead of paying CPU and wire serially.

        The process value is True if the datagram (or any chunk of a
        burst) was delivered, False if it was lost or the destination is
        down/absent.
        """
        return self.sim.process(self._transmit(dgram, params, min_hold))

    def _transmit(self, dgram: Datagram, params: TransportParams,
                  min_hold: float):
        src_nic = self._nics.get(dgram.src)
        if src_nic is None or src_nic.down:
            self.stats.add("tx.dropped.src_down")
            return False
        frames = self.burst_frames(dgram)
        wire = self.link.wire_time(dgram.size, frames)
        hold = max(wire, min_hold)
        first = self.link.frame_time(
            min(dgram.size, self.link.mtu_bytes - 28))
        self.stats.add("tx.datagrams", dgram.count)
        self.stats.add("tx.bytes", dgram.size)
        self.stats.add("tx.frames", frames)
        delivered = yield from self._transmit_tail(src_nic, dgram, params,
                                                   hold, first)
        return delivered

    def _transmit_tail(self, src_nic: NIC, dgram: Datagram,
                       params: TransportParams, hold: float, first: float):
        """Packet path from the TX-engine grant onward (also the fallback
        continuation when a fast datagram finds its TX engine busy)."""
        yield src_nic.tx.acquire()
        rx_proc = self.sim.process(self._rx_side(dgram, params, hold, first))
        yield self.sim.timeout(hold)
        src_nic.tx.release()
        delivered = yield rx_proc
        return delivered

    def _rx_side(self, dgram: Datagram, params: TransportParams,
                 wire: float, first_frame: float):
        yield self.sim.timeout(self.link.switch_latency_s + first_frame)
        dst_nic = self._nics.get(dgram.dst)
        if dst_nic is None or dst_nic.down:
            self.stats.add("rx.dropped.dst_down")
            return False
        if not self.reachable(dgram.src, dgram.dst):
            self.stats.add("rx.dropped.partitioned")
            return False

        # Receiver CPU: frames are processed as they arrive, so for bursts
        # only the final chunk's processing trails the last frame; the
        # rest overlaps (and throttles) the stream.
        frames = self.burst_frames(dgram)
        cpu_total = params.cpu_time(dgram.size, frames, dgram.count,
                                    params.recv_overhead_s)
        if dgram.is_burst and dgram.count > 1:
            last = dgram.chunks[-1]
            tail = min(cpu_total, params.cpu_time(
                last.size, self.frames_for(last.size), 1,
                params.recv_overhead_s))
            hold = max(wire, cpu_total - tail)
        else:
            tail = cpu_total
            hold = wire

        delivered = yield from self._rx_finish(dst_nic, dgram, params,
                                               hold, tail)
        return delivered

    def _rx_finish(self, dst_nic: NIC, dgram: Datagram,
                   params: TransportParams, hold: float, tail: float):
        """Packet path from the RX-engine grant onward (also the fallback
        continuation when a fast datagram finds its RX engine busy)."""
        yield dst_nic.rx.acquire()
        yield self.sim.timeout(hold)
        dst_nic.rx.release()

        dgram = self._apply_loss(dgram, params)
        if dgram is None:
            return False
        yield self.sim.timeout(tail)
        dst_nic.deliver(dgram)
        return True

    # -- datagram fast path -----------------------------------------------------
    # The RPC-rate twin of the bulk fast path (net/bulk.py): on the common
    # lossless, uncontended configuration a single datagram costs ~13
    # events across three generator processes just to prove that nothing
    # contended.  fast_transmit computes the same timeline in closed form
    # and walks it with five plain events and zero processes.  Each stage
    # *re-validates* the condition the packet path would have checked at
    # that instant and falls back to the exact packet-path continuation
    # when the world changed mid-flight, so virtual times, stats and
    # deliveries are identical either way (ties at equal timestamps may
    # interleave differently; see docs/PERFORMANCE.md).

    def fast_transmit(self, dgram: Datagram,
                      params: TransportParams) -> Optional["Event"]:
        """Carry a single uncontended datagram with O(1) events.

        Returns the send event — firing with ``dgram.size`` after the
        sender-side CPU overhead, exactly like ``USocket._send_proc`` —
        or None when the fast path cannot engage (burst, lossy transport,
        engines busy, competing bulk/datagram traffic, partition, either
        NIC down): the caller then uses the packet path unchanged.
        """
        if not self.dgram_fastpath or dgram.is_burst or dgram.count != 1 \
                or dgram.src == dgram.dst:
            return None
        if params.frame_loss_prob > 0.0 or self.extra_loss_prob > 0.0:
            return None
        src_nic = self._nics.get(dgram.src)
        dst_nic = self._nics.get(dgram.dst)
        if src_nic is None or src_nic.down or dst_nic is None \
                or dst_nic.down:
            return None
        if not self.reachable(dgram.src, dgram.dst):
            return None
        if not (src_nic.quiescent and dst_nic.quiescent):
            return None
        counts = self._bulk_counts
        inflight = self._dgram_inflight
        src, dst = dgram.src, dgram.dst
        if counts.get(src, 0) or counts.get(dst, 0) \
                or inflight.get(src, 0) or inflight.get(dst, 0):
            return None

        # The packet path's exact schedule, replayed float-for-float:
        #   t1      sender CPU done; TX engine taken       (_send_proc)
        #   t1+wire TX engine released                     (_transmit)
        #   t_arr   leading frame through the switch       (_rx_side)
        #   t_rx    RX engine released, loss point         (_rx_side)
        #   t_dlv   receiver CPU done; datagram delivered  (_rx_side)
        sim = self.sim
        link = self.link
        frames = self.frames_for(dgram.size)
        wire = link.wire_time(dgram.size, frames)
        first = link.frame_time(min(dgram.size, link.mtu_bytes - 28))
        t1 = sim.now + params.cpu_time(dgram.size, frames, 1,
                                       params.send_overhead_s)
        tail = params.cpu_time(dgram.size, frames, 1,
                               params.recv_overhead_s)
        t_arr = t1 + (link.switch_latency_s + first)
        t_rx = t_arr + wire
        t_dlv = t_rx + tail

        inflight[src] = inflight.get(src, 0) + 1
        inflight[dst] = inflight.get(dst, 0) + 1
        self.stats.add("fastpath.dgrams")

        def finish():
            inflight[src] -= 1
            inflight[dst] -= 1

        def stage_send(_evt):
            # t1: the NIC takes the datagram (packet path: _transmit entry)
            nic = self._nics.get(src)
            if nic is None or nic.down:
                self.stats.add("tx.dropped.src_down")
                finish()
                return
            self.stats.add("tx.datagrams", 1)
            self.stats.add("tx.bytes", dgram.size)
            self.stats.add("tx.frames", frames)
            tx = nic.tx
            if tx._in_use or tx._waiters:
                # the engine got busy since clearance: packet continuation
                self.stats.add("fastpath.dgram_fallbacks")
                sim.process(self._dgram_fallback_tx(
                    nic, dgram, params, wire, first, finish))
                return
            # grant the idle engine directly — release() below restores
            # the normal waiter-granting path for anyone who queues up
            tx._in_use += 1
            sim.call_at(t1 + wire, tx.release)
            arr = sim.at(t_arr)
            arr.callbacks.append(stage_arrive)

        def stage_arrive(_evt):
            # t_arr: leading frame at the receiver (packet: _rx_side checks)
            nic = self._nics.get(dst)
            if nic is None or nic.down:
                self.stats.add("rx.dropped.dst_down")
                finish()
                return
            if not self.reachable(src, dst):
                self.stats.add("rx.dropped.partitioned")
                finish()
                return
            rx = nic.rx
            if rx._in_use or rx._waiters:
                self.stats.add("fastpath.dgram_fallbacks")
                sim.process(self._dgram_fallback_rx(
                    nic, dgram, params, wire, tail, finish))
                return
            rx._in_use += 1
            done = sim.at(t_rx)
            done.callbacks.append(stage_rx_done)

        def stage_rx_done(_evt):
            # t_rx: serialization complete; the loss point.  _apply_loss
            # is a no-op draw-for-draw match of the packet path: it only
            # consumes RNG when a loss burst started mid-flight.
            self._nics[dst].rx.release()
            survived = self._apply_loss(dgram, params)
            if survived is None:
                finish()
                return
            dlv = sim.at(t_dlv)
            dlv.callbacks.append(
                lambda _e, d=survived: stage_deliver(d))

        def stage_deliver(d):
            # t_dlv: receiver CPU charged; deliver() re-checks NIC state
            self._nics[dst].deliver(d)
            finish()

        evt = sim.at(t1, value=dgram.size)
        evt.callbacks.append(stage_send)
        return evt

    def _dgram_fallback_tx(self, src_nic: NIC, dgram: Datagram,
                           params: TransportParams, hold: float,
                           first: float, finish):
        """Fast datagram whose TX engine got busy between clearance and
        handoff: finish on the packet path, keeping the host registered
        until delivery so no new fast traffic engages over it."""
        try:
            delivered = yield from self._transmit_tail(
                src_nic, dgram, params, hold, first)
        finally:
            finish()
        return delivered

    def _dgram_fallback_rx(self, dst_nic: NIC, dgram: Datagram,
                           params: TransportParams, hold: float,
                           tail: float, finish):
        """Fast datagram whose RX engine got busy mid-flight: finish on
        the packet path from the RX-engine grant onward."""
        try:
            delivered = yield from self._rx_finish(
                dst_nic, dgram, params, hold, tail)
        finally:
            finish()
        return delivered

    # -- loss model ------------------------------------------------------------
    def _apply_loss(self, dgram: Datagram,
                    params: TransportParams) -> Datagram | None:
        p_frame = params.frame_loss_prob
        if self.extra_loss_prob > 0.0:
            # injected loss burst: frames survive only if they dodge both
            # the endpoint's own loss model and the injected one
            p_frame = 1.0 - (1.0 - p_frame) * (1.0 - self.extra_loss_prob)
        if p_frame <= 0.0:
            return dgram
        if not dgram.is_burst:
            p_drop = 1.0 - (1.0 - p_frame) ** self.frames_for(dgram.size)
            if self._loss_rng.random() < p_drop:
                self.stats.add("loss.datagrams")
                return None
            return dgram
        lost = set()
        for chunk in dgram.chunks:
            p_drop = 1.0 - (1.0 - p_frame) ** self.frames_for(chunk.size)
            if self._loss_rng.random() < p_drop:
                lost.add(chunk.seq)
        if len(lost) == len(dgram.chunks):
            self.stats.add("loss.bursts_total")
            return None
        if lost:
            self.stats.add("loss.chunks", len(lost))
            survivors = [c for c in dgram.chunks if c.seq not in lost]
            return Datagram(
                src=dgram.src, sport=dgram.sport, dst=dgram.dst,
                dport=dgram.dport,
                size=sum(c.size for c in survivors),
                transport=dgram.transport, payload=dgram.payload,
                chunks=tuple(survivors), lost=frozenset(lost))
        return dgram
