"""Host network interface: TX/RX serialization engines and port demux.

Each workstation owns one NIC (the SMC Etherpower of the paper).  The NIC
is full duplex: independent TX and RX engines, each modeled as a
single-capacity resource held for the serialization time of a transmission.
Incoming datagrams are demultiplexed to the transport endpoint named in the
datagram, then to the socket bound to the destination port — unbound ports
silently drop, like real UDP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.metrics.recorder import Recorder
from repro.sim import Resource, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network
    from repro.net.packet import Datagram
    from repro.net.usocket import TransportEndpoint


class NIC:
    """A host's network interface card."""

    def __init__(self, sim: Simulator, addr: str):
        self.sim = sim
        self.addr = addr
        self.tx = Resource(sim, capacity=1)
        self.rx = Resource(sim, capacity=1)
        #: transport endpoints keyed by transport name ("udp" / "unet")
        self.endpoints: dict[str, "TransportEndpoint"] = {}
        self._down = False
        #: back-reference set by :meth:`Network.attach`
        self.network: Optional["Network"] = None
        self.stats = Recorder(f"nic.{addr}")
        if sim.telemetry.enabled:
            sim.telemetry.register(sim, "nic", addr, self)

    @property
    def quiescent(self) -> bool:
        """Both serialization engines idle with empty wait queues — the
        state the flow-level fast paths require at engage time."""
        tx, rx = self.tx, self.rx
        return not (tx._in_use or rx._in_use or tx._waiters or rx._waiters)

    @property
    def down(self) -> bool:
        """A downed NIC (crashed / powered-off host) drops all traffic."""
        return self._down

    @down.setter
    def down(self, value: bool) -> None:
        value = bool(value)
        was = self._down
        self._down = value
        if value != was and self.sim.eventlog.enabled:
            self.sim.eventlog.warn(self.sim, "nic",
                                   "nic.down" if value else "nic.up",
                                   host=self.addr)
        if value and not was and self.network is not None:
            # fast-path transfers in flight across this host must notice
            # the failure they would otherwise never observe on the wire
            self.network.notify_nic_down(self.addr)

    def register_endpoint(self, endpoint: "TransportEndpoint") -> None:
        name = endpoint.params.name
        if name in self.endpoints:
            raise ValueError(f"endpoint {name!r} already registered on {self.addr}")
        self.endpoints[name] = endpoint

    def deliver(self, dgram: "Datagram") -> None:
        """Hand a received datagram to the owning socket, if any."""
        if self.down:
            self.stats.add("rx.dropped.down")
            return
        endpoint = self.endpoints.get(dgram.transport)
        if endpoint is None:
            self.stats.add("rx.dropped.no_endpoint")
            return
        sock = endpoint.socket_for_port(dgram.dport)
        if sock is None:
            self.stats.add("rx.dropped.no_port")
            return
        self.stats.add("rx.datagrams", dgram.count)
        self.stats.add("rx.bytes", dgram.size)
        sock._enqueue(dgram)

    def endpoint(self, transport: str) -> "TransportEndpoint":
        ep = self.endpoints.get(transport)
        if ep is None:
            raise KeyError(f"host {self.addr} has no {transport!r} endpoint")
        return ep
