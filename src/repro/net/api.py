"""Paper-faithful ``libusocket.a`` function names (Figure 6).

These wrappers exist for interface fidelity with the paper; internal code
uses the object API in :mod:`repro.net.usocket` directly.  Descriptor
management mirrors the C library: ``u_socket`` returns a small integer fd,
``u_close`` releases it, and addresses are MAC-address strings converted
with ``u_aton``/``u_ntoa``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.net.usocket import TransportEndpoint, USocket


class USocketAPI:
    """Per-host facade exposing the Figure-6 functions over one endpoint."""

    def __init__(self, endpoint: TransportEndpoint):
        self.endpoint = endpoint
        self._fds: dict[int, USocket] = {}
        self._next_fd = 3  # after stdin/stdout/stderr, like a Unix process

    # -- descriptor management ---------------------------------------------
    def u_socket(self, sendbufsize: int, recvbufsize: int) -> int:
        """Create a socket; returns a non-negative descriptor."""
        sock = self.endpoint.socket(sendbuf=sendbufsize, recvbuf=recvbufsize)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = sock
        return fd

    def u_close(self, usockfd: int) -> int:
        """Close a descriptor; returns 0, or -1 if the fd is unknown."""
        sock = self._fds.pop(usockfd, None)
        if sock is None:
            return -1
        sock.close()
        return 0

    # -- addressing ------------------------------------------------------------
    @staticmethod
    def u_aton(str_addr: str) -> str:
        """Parse an address string; our 'MAC addresses' are host names."""
        return str_addr

    @staticmethod
    def u_ntoa(macaddr: str) -> str:
        return str(macaddr)

    def u_bind(self, usockfd: int, port: int) -> int:
        """Bind the socket to a well-known port; returns 0 or -1.

        The C library bound to MAC addresses; our network identifies hosts
        by name, so binding selects the service port.
        """
        sock = self._sock(usockfd)
        if sock is None:
            return -1
        endpoint = self.endpoint
        if endpoint.socket_for_port(port) is not None:
            return -1
        endpoint._unbind(sock.port)
        sock.port = port
        endpoint._ports[port] = sock
        return 0

    def u_connect(self, usockfd: int, macaddr: str, port: int) -> int:
        sock = self._sock(usockfd)
        if sock is None:
            return -1
        sock.connect(macaddr, port)
        return 0

    # -- data transfer --------------------------------------------------------
    def u_send(self, usockfd: int, buff: bytes, length: Optional[int] = None):
        """Send ``buff`` to the connected peer; event yields byte count."""
        sock = self._sock(usockfd)
        if sock is None:
            raise ValueError(f"bad usocket fd {usockfd}")
        if length is None:
            length = len(buff)
        return sock.send(length, payload=bytes(buff[:length]))

    def u_send_iovec(self, usockfd: int, iov: Sequence[bytes]):
        sock = self._sock(usockfd)
        if sock is None:
            raise ValueError(f"bad usocket fd {usockfd}")
        return sock.send_iovec(iov)

    def u_recv(self, usockfd: int, length: int, timeout: Optional[float] = None):
        """Receive one datagram; the event yields ``(data, src_addr)`` or
        ``(None, None)`` on timeout.  Data longer than ``length`` is
        truncated, as with real datagram sockets."""
        sock = self._sock(usockfd)
        if sock is None:
            raise ValueError(f"bad usocket fd {usockfd}")
        return self.endpoint.sim.process(self._recv_proc(sock, length, timeout))

    def u_recv_iovec(self, usockfd: int, iov_sizes: Sequence[int],
                     timeout: Optional[float] = None):
        """Scatter receive: the event yields ``(list_of_buffers, src_addr)``
        splitting the datagram across the iovec sizes."""
        total = sum(iov_sizes)
        return self.endpoint.sim.process(
            self._recv_iovec_proc(self._sock(usockfd), list(iov_sizes), total,
                                  timeout))

    # -- internals -----------------------------------------------------------
    def _sock(self, fd: int) -> Optional[USocket]:
        return self._fds.get(fd)

    def _recv_proc(self, sock: USocket, length: int, timeout):
        dgram = yield sock.recv(timeout)
        if dgram is None:
            return None, None
        data = dgram.payload if isinstance(dgram.payload, (bytes, bytearray)) \
            else b""
        return bytes(data[:length]), dgram.src

    def _recv_iovec_proc(self, sock: USocket, sizes: list[int], total: int,
                         timeout):
        if sock is None:
            raise ValueError("bad usocket fd")
        dgram = yield sock.recv(timeout)
        if dgram is None:
            return None, None
        data = dgram.payload if isinstance(dgram.payload, (bytes, bytearray)) \
            else b""
        data = bytes(data[:total])
        bufs, off = [], 0
        for size in sizes:
            bufs.append(data[off:off + size])
            off += size
        return bufs, dgram.src
