"""Simulated cluster interconnect: switched Ethernet, UDP and U-Net.

Layering (bottom up):

* :mod:`repro.net.network` — links + store-and-forward switch, loss model
* :mod:`repro.net.nic` — per-host TX/RX engines and port demux
* :mod:`repro.net.usocket` / :mod:`repro.net.api` — the paper's
  ``libusocket.a`` datagram API, parameterized by transport
  (:mod:`repro.net.params`)
* :mod:`repro.net.rpc` — control-plane request/response with retries
* :mod:`repro.net.bulk` — Section 4.4's blast / selective-NACK protocol
"""

from repro.net.api import USocketAPI
from repro.net.bulk import BulkError, BulkParams, recv_bulk, send_bulk
from repro.net.network import Network
from repro.net.nic import NIC
from repro.net.packet import Chunk, Datagram
from repro.net.params import (LinkParams, TransportParams, UDP_PARAMS,
                              UNET_PARAMS, transport_params)
from repro.net.rpc import RpcClient, RpcRemoteError, RpcServer, RpcTimeout
from repro.net.usocket import SocketClosed, TransportEndpoint, USocket

__all__ = [
    "BulkError",
    "BulkParams",
    "Chunk",
    "Datagram",
    "LinkParams",
    "NIC",
    "Network",
    "RpcClient",
    "RpcRemoteError",
    "RpcServer",
    "RpcTimeout",
    "SocketClosed",
    "TransportEndpoint",
    "TransportParams",
    "UDP_PARAMS",
    "UNET_PARAMS",
    "USocket",
    "USocketAPI",
    "recv_bulk",
    "send_bulk",
    "transport_params",
]
