"""Timing/size parameters for the simulated cluster interconnect.

The platform is the paper's: a 16-port 100 Mb/s full-duplex switched
Ethernet (BayStack 350) with SMC Etherpower NICs.  Two transports share the
wire:

* **UDP/IP** — datagrams up to 64 KB, kernel crossings on both ends (fixed
  per-datagram overhead plus a per-byte copy through the socket buffer).
* **U-Net** — user-level access to the NIC, ~1.5 KB messages, small fixed
  per-message overhead, no kernel copy.

Overhead constants are calibrated (see ``tests/net/test_calibration.py``)
so that an 8 KB remote read lands at ~7 MB/s over UDP and ~9.5 MB/s over
U-Net — bracketing the paper's measured 7.75 MB/s sequential disk
bandwidth, which is what produces the paper's "no speedup for sequential,
U-Net beats UDP" results.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkParams:
    """Physical-layer model for each host<->switch link."""

    #: raw link rate in bits/second (100 Mb/s Fast Ethernet)
    bandwidth_bps: float = 100e6
    #: per-frame framing + header bytes on the wire (preamble, Ethernet,
    #: IP/UDP headers, inter-frame gap) — charged once per frame
    frame_overhead_bytes: int = 46
    #: maximum Ethernet payload per frame
    mtu_bytes: int = 1500
    #: store-and-forward latency through the switch, per transmission
    switch_latency_s: float = 10e-6

    def frame_time(self, payload_bytes: int) -> float:
        """Wire time of a single frame carrying ``payload_bytes``."""
        return (payload_bytes + self.frame_overhead_bytes) * 8.0 \
            / self.bandwidth_bps

    def wire_time(self, payload_bytes: int, frames: int) -> float:
        """Serialization time of ``frames`` frames totalling ``payload_bytes``."""
        total = payload_bytes + frames * self.frame_overhead_bytes
        return total * 8.0 / self.bandwidth_bps

    def frames_for(self, payload_bytes: int) -> int:
        """Ethernet frames needed for one datagram of ``payload_bytes``
        (IP fragmentation: 28 header bytes per fragment)."""
        if payload_bytes <= 0:
            return 1
        per_frame = self.mtu_bytes - 28
        return max(1, -(-payload_bytes // per_frame))


@dataclass(frozen=True)
class TransportParams:
    """Software-overhead model for one transport (UDP or U-Net).

    Host CPU cost of moving one datagram =
    ``fixed per-datagram + per-frame * frames + bytes / copy_bandwidth``,
    charged on each side.  For UDP the per-frame term models the interrupt
    + IP reassembly work the 2.0 kernel does per Ethernet frame; the copy
    term models the socket-buffer copy plus checksumming.  U-Net takes the
    fixed cost per *message* (= one frame) and only the single user-level
    copy from the receive buffer into the region block (the paper's
    iovec-based path removes the temporary-buffer copy, not that one).
    """

    name: str
    #: largest application payload per datagram/message
    max_payload: int
    #: fixed CPU cost per datagram on the sending host (syscall / doorbell)
    send_overhead_s: float
    #: fixed CPU cost per datagram on the receiving host
    recv_overhead_s: float
    #: memory-copy (+checksum) bandwidth charged per side, bytes/s;
    #: ``None`` means zero-copy
    copy_bandwidth: float | None
    #: CPU cost per Ethernet frame (interrupt/reassembly); 0 where the
    #: fixed per-datagram cost already is per frame (U-Net)
    per_frame_overhead_s: float = 0.0
    #: independent per-frame loss probability injected at the switch
    frame_loss_prob: float = 0.0

    def cpu_time(self, payload_bytes: int, frames: int, count: int,
                 fixed: float) -> float:
        """Host CPU time to push/pull ``count`` datagrams totalling
        ``payload_bytes`` over ``frames`` wire frames."""
        t = count * fixed + frames * self.per_frame_overhead_s
        if self.copy_bandwidth is not None and payload_bytes > 0:
            t += payload_bytes / self.copy_bandwidth
        return t


#: UDP/IP over the kernel socket stack on a 200 MHz Pentium Pro.
UDP_PARAMS = TransportParams(
    name="udp",
    max_payload=64 * 1024,
    send_overhead_s=70e-6,
    recv_overhead_s=70e-6,
    copy_bandwidth=60e6,
    per_frame_overhead_s=17.5e-6,
)

#: U-Net user-level networking: one Ethernet frame per message; the only
#: copy left is receive-buffer -> region block (~80 MB/s, charged as
#: 160 MB/s per side since our model charges both ends).
UNET_PARAMS = TransportParams(
    name="unet",
    max_payload=1472,
    send_overhead_s=22e-6,
    recv_overhead_s=22e-6,
    copy_bandwidth=160e6,
)


def transport_params(name: str, frame_loss_prob: float = 0.0) -> TransportParams:
    """Look up a transport parameter set by name ('udp' or 'unet')."""
    base = {"udp": UDP_PARAMS, "unet": UNET_PARAMS}.get(name)
    if base is None:
        raise ValueError(f"unknown transport {name!r} (use 'udp' or 'unet')")
    if frame_loss_prob:
        from dataclasses import replace
        return replace(base, frame_loss_prob=frame_loss_prob)
    return base
