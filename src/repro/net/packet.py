"""Datagram representation for the simulated network.

A :class:`Datagram` is what a transport hands to the switch.  Two forms
exist:

* a *single* datagram — one UDP datagram or one U-Net message;
* a *burst* — the bulk-transfer protocol's blast of consecutively numbered
  chunks, carried as one object so a 100 MB region transfer costs hundreds
  of simulator events instead of hundreds of thousands.  Timing and loss
  are computed exactly as if the chunks had been sent one by one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


@dataclass
class Chunk:
    """One protocol chunk inside a burst: a sequence number plus payload.

    ``data`` is a buffer (``bytes`` or a zero-copy ``memoryview`` slice of
    the sender's region) in functional mode or ``None`` in metadata-only
    (performance) mode; ``size`` is authoritative either way.  Receivers
    materialize ``bytes`` only at reassembly.
    """

    seq: int
    size: int
    data: Optional[bytes | memoryview] = None

    def __post_init__(self) -> None:
        if self.data is not None and len(self.data) != self.size:
            raise ValueError(
                f"chunk seq={self.seq}: size={self.size} but "
                f"len(data)={len(self.data)}")


@dataclass
class Datagram:
    """A unit of transmission between two (addr, port) endpoints."""

    src: str
    sport: int
    dst: str
    dport: int
    #: application payload byte count (sum over chunks for a burst)
    size: int
    #: name of the transport that carries this datagram ("udp" / "unet")
    transport: str = "udp"
    #: opaque payload: an RPC message, bytes, or None (metadata-only)
    payload: Any = None
    #: burst chunks; empty for a single datagram
    chunks: Sequence[Chunk] = field(default_factory=tuple)
    #: number of datagrams this object stands for (1, or len(chunks))
    count: int = 1
    #: chunk seqs lost in transit, filled in by the switch's loss model
    lost: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative datagram size {self.size}")
        if self.chunks:
            total = sum(c.size for c in self.chunks)
            if total != self.size:
                raise ValueError(
                    f"burst size {self.size} != sum of chunk sizes {total}")
            self.count = len(self.chunks)

    @property
    def is_burst(self) -> bool:
        return bool(self.chunks)

    def delivered_chunks(self) -> list[Chunk]:
        """Chunks that survived transit (all, minus the ``lost`` set)."""
        if not self.lost:
            return list(self.chunks)
        return [c for c in self.chunks if c.seq not in self.lost]
